package classify

import "raccd/internal/mem"

// ROClassifier extends the PT scheme with shared read-only detection
// (Cuesta et al. [38], discussed in §VI-B of the paper): pages read by
// multiple cores but never written after becoming shared stay non-coherent,
// recovering workloads like KNN whose large training set is shared
// read-only. The page state machine is:
//
//	private(owner) --other core reads--> sharedRO --any write--> shared
//	private(owner) --other core writes--------------------------> shared
//
// Transitions out of non-coherent states require flushing the page's cached
// blocks: from the previous owner on leaving private, and from every core on
// leaving sharedRO (copies are untracked, so all private caches must be
// swept). Once shared, a page never returns, as in PT.
type ROClassifier struct {
	owner    map[mem.Page]int
	writable map[mem.Page]bool // private page was written by its owner
	sharedRO map[mem.Page]struct{}
	shared   map[mem.Page]struct{}

	Stats ROStats
}

// ROStats counts RO-classifier events.
type ROStats struct {
	FirstTouches  uint64
	ToSharedRO    uint64
	ToShared      uint64
	WriteDemotion uint64 // sharedRO pages demoted by a write
}

// ROFlip describes a transition requiring cache flushes.
type ROFlip struct {
	Page mem.Page
	// PrevOwner is the core to flush when leaving private state;
	// -1 when every core must be flushed (leaving sharedRO).
	PrevOwner int
}

// NewRO returns an empty read-only-aware classifier.
func NewRO() *ROClassifier {
	return &ROClassifier{
		owner:    make(map[mem.Page]int),
		writable: make(map[mem.Page]bool),
		sharedRO: make(map[mem.Page]struct{}),
		shared:   make(map[mem.Page]struct{}),
	}
}

// Access records an access and returns whether it may proceed non-coherently
// plus any flush-requiring transition.
func (c *ROClassifier) Access(core int, vp mem.Page, write bool) (nonCoherent bool, flip *ROFlip) {
	if _, isShared := c.shared[vp]; isShared {
		return false, nil
	}
	if _, isRO := c.sharedRO[vp]; isRO {
		if !write {
			return true, nil
		}
		// A write demotes the page to fully shared; every core may hold
		// untracked copies.
		delete(c.sharedRO, vp)
		c.shared[vp] = struct{}{}
		c.Stats.ToShared++
		c.Stats.WriteDemotion++
		return false, &ROFlip{Page: vp, PrevOwner: -1}
	}
	owner, seen := c.owner[vp]
	if !seen {
		c.owner[vp] = core
		c.writable[vp] = write
		c.Stats.FirstTouches++
		return true, nil
	}
	if owner == core {
		if write {
			c.writable[vp] = true
		}
		return true, nil
	}
	// Second core touches a private page.
	delete(c.owner, vp)
	delete(c.writable, vp)
	if write {
		c.shared[vp] = struct{}{}
		c.Stats.ToShared++
		return false, &ROFlip{Page: vp, PrevOwner: owner}
	}
	// A read: the page becomes shared read-only and STAYS non-coherent;
	// the previous owner may hold dirty private copies that must reach
	// the LLC first.
	c.sharedRO[vp] = struct{}{}
	c.Stats.ToSharedRO++
	return true, &ROFlip{Page: vp, PrevOwner: owner}
}

// State reporting for tests and statistics.

// IsPrivate reports whether vp is private to some core.
func (c *ROClassifier) IsPrivate(vp mem.Page) bool { _, ok := c.owner[vp]; return ok }

// IsSharedRO reports whether vp is shared read-only (non-coherent).
func (c *ROClassifier) IsSharedRO(vp mem.Page) bool { _, ok := c.sharedRO[vp]; return ok }

// IsShared reports whether vp is fully shared (coherent).
func (c *ROClassifier) IsShared(vp mem.Page) bool { _, ok := c.shared[vp]; return ok }
