package energy

import (
	"math"
	"testing"
)

// Paper Table III ground truth: entries (total) → KB and mm².
var tableIII = []struct {
	ratio   int
	entries int
	kb      float64
	mm2     float64
}{
	{1, 524288, 4224, 106.08},
	{2, 262144, 2112, 53.92},
	{4, 131072, 1056, 34.08},
	{8, 65536, 528, 21.28},
	{16, 32768, 264, 14.88},
	{64, 8192, 66, 6.18},
	{256, 2048, 16.5, 2.64},
}

func TestDirectorySizeKBMatchesTableIII(t *testing.T) {
	for _, row := range tableIII {
		got := DirectorySizeKB(row.entries)
		if math.Abs(got-row.kb) > 0.01 {
			t.Errorf("ratio 1:%d: size = %.2f KB, want %.2f", row.ratio, got, row.kb)
		}
	}
}

func TestAreaWithinTolerance(t *testing.T) {
	// The analytic fit must be within 20 % of every Table III area.
	for _, row := range tableIII {
		got := SRAMAreaMM2(row.kb)
		rel := math.Abs(got-row.mm2) / row.mm2
		if rel > 0.20 {
			t.Errorf("ratio 1:%d: area = %.2f mm², paper %.2f (off %.0f%%)", row.ratio, got, row.mm2, rel*100)
		}
	}
}

func TestAreaMonotone(t *testing.T) {
	prev := math.Inf(1)
	for _, row := range tableIII {
		got := SRAMAreaMM2(row.kb)
		if got >= prev {
			t.Errorf("area not monotone: %.2f mm² at %.1f KB >= %.2f", got, row.kb, prev)
		}
		prev = got
	}
}

func TestAreaReductionAt256(t *testing.T) {
	// Paper: "97.5% reduction of the directory area for 1:256".
	full := SRAMAreaMM2(tableIII[0].kb)
	small := SRAMAreaMM2(tableIII[6].kb)
	reduction := 1 - small/full
	if reduction < 0.90 || reduction > 0.995 {
		t.Errorf("area reduction at 1:256 = %.1f%%, paper 97.5%%", reduction*100)
	}
}

func TestPerAccessSublinear(t *testing.T) {
	m := AccessModel{E0: 1, RefKB: 4224}
	if got := m.PerAccess(4224); math.Abs(got-1) > 1e-12 {
		t.Fatalf("reference energy = %v, want 1", got)
	}
	// Quartering the size must halve the per-access energy (sqrt model).
	if got := m.PerAccess(1056); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("quarter-size energy = %v, want 0.5", got)
	}
	if m.PerAccess(0) != 0 || m.PerAccess(-5) != 0 {
		t.Fatal("non-positive capacity must cost 0")
	}
}

func TestDirDynamicFlat(t *testing.T) {
	m := Default(264, 2048)
	u := Usage{DirAccesses: 1000, DirKB: 264}
	if got := m.DirDynamic(u); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("DirDynamic = %v, want 1000 (1000 accesses × E0)", got)
	}
	// Fewer accesses at a smaller directory always cost less.
	smaller := Usage{DirAccesses: 1000, DirKB: 66}
	if m.DirDynamic(smaller) >= m.DirDynamic(u) {
		t.Fatal("smaller directory must cost less per access")
	}
}

func TestDirDynamicWeightedOverride(t *testing.T) {
	m := Default(264, 2048)
	u := Usage{DirAccesses: 1000, DirKB: 264, WeightedDirAccessEnergy: 123}
	if got := m.DirDynamic(u); math.Abs(got-123) > 1e-9 {
		t.Fatalf("weighted override ignored: %v", got)
	}
}

func TestDirDynamicMoveCost(t *testing.T) {
	m := Default(264, 2048)
	base := m.DirDynamic(Usage{DirAccesses: 100, DirKB: 264})
	moved := m.DirDynamic(Usage{DirAccesses: 100, DirKB: 264, DirEntriesMoved: 50})
	if moved <= base {
		t.Fatal("entry moves must add energy")
	}
	if math.Abs((moved-base)-100) > 1e-9 { // 50 moves × 2 accesses × E0
		t.Fatalf("move cost = %v, want 100", moved-base)
	}
}

func TestLLCAndNoCDynamic(t *testing.T) {
	m := Default(264, 2048)
	if m.LLCDynamic(Usage{LLCAccesses: 10, LLCKB: 2048}) != 25 {
		t.Fatal("LLC dynamic at reference size should be accesses × 2.5")
	}
	if m.NoCDynamic(Usage{NoCByteHops: 1000}) != 10 {
		t.Fatal("NoC dynamic should be byte-hops × 0.01")
	}
}
