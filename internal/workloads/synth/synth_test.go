package synth_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"raccd/internal/coherence"
	"raccd/internal/rts"
	"raccd/internal/sim"
	"raccd/internal/tracefile"
	"raccd/internal/workloads"
	"raccd/internal/workloads/synth"
)

// smallParams shrinks a preset enough for per-test simulation.
func smallParams(t *testing.T, preset string) synth.Params {
	t.Helper()
	p, err := synth.Default(preset)
	if err != nil {
		t.Fatal(err)
	}
	p.Width = 4
	p.Depth = 6
	p.BlocksPerTask = 8
	if p.SharedBlocks > 0 {
		p.SharedBlocks = 64
	}
	return p
}

// Every preset must run to completion under every scheme with golden-memory
// and invariant validation on.
func TestPresetsRunUnderAllSchemes(t *testing.T) {
	for _, preset := range synth.Presets() {
		for _, sys := range []coherence.Mode{coherence.FullCoh, coherence.PT, coherence.PTRO, coherence.RaCCD} {
			preset, sys := preset, sys
			t.Run(preset+"/"+sys.String(), func(t *testing.T) {
				w, err := synth.New(smallParams(t, preset))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sim.Run(w, sim.DefaultConfig(sys, 16))
				if err != nil {
					t.Fatal(err)
				}
				if res.TasksRun == 0 || res.Cycles == 0 {
					t.Fatalf("degenerate run: %+v", res)
				}
			})
		}
	}
}

// A fixed seed must produce byte-identical RTF output, including when many
// goroutines build the same workload concurrently (the -jobs property).
func TestByteDeterminism(t *testing.T) {
	for _, preset := range synth.Presets() {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			p := smallParams(t, preset)
			p.Unannotated = 0.25
			encode := func() []byte {
				w, err := synth.New(p)
				if err != nil {
					t.Fatal(err)
				}
				tr, err := tracefile.Record(w, tracefile.Fingerprint(w.Name()))
				if err != nil {
					t.Error(err)
					return nil
				}
				var buf bytes.Buffer
				if err := tracefile.Encode(&buf, tr); err != nil {
					t.Error(err)
					return nil
				}
				return buf.Bytes()
			}
			want := encode()
			const workers = 8
			got := make([][]byte, workers)
			var wg sync.WaitGroup
			for i := 0; i < workers; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					got[i] = encode()
				}(i)
			}
			wg.Wait()
			for i := range got {
				if !bytes.Equal(got[i], want) {
					t.Fatalf("concurrent build %d produced different bytes", i)
				}
			}
		})
	}
}

// The canonical name round-trips through Parse, and the workloads registry
// resolves synth: specs.
func TestSpecRoundTrip(t *testing.T) {
	p, err := synth.Parse("synth:chain/seed=7/width=3/depth=5/unannotated=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 7 || p.Width != 3 || p.Depth != 5 || p.Unannotated != 0.5 {
		t.Fatalf("parsed %+v", p)
	}
	back, err := synth.Parse(p.Name())
	if err != nil {
		t.Fatal(err)
	}
	if back != p {
		t.Fatalf("Parse(Name()) = %+v, want %+v", back, p)
	}

	// Defaults stay out of the canonical name.
	d, _ := synth.Default("stencil")
	if got := d.Name(); got != "synth:stencil" {
		t.Fatalf("default name = %q", got)
	}

	w, err := workloads.Get("synth:stencil/width=3/depth=4", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "synth:stencil/width=3/depth=4" {
		t.Fatalf("registry workload name = %q", w.Name())
	}
	g := rts.NewGraph()
	w.Build(g)
	if g.NumTasks() != 12 {
		t.Fatalf("stencil 3×4 built %d tasks, want 12", g.NumTasks())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"nosuch", "unknown preset"},
		{"chain/oops", "key=value"},
		{"chain/color=blue", "unknown spec key"},
		{"chain/seed=abc", "seed=abc"},
		{"chain/width=0", "at least 1"},
		{"chain/unannotated=1.5", "[0, 1]"},
		{"readonly/shared=0", "shared"},
		{"chain/width=2048/depth=2048", "cap"},
	}
	for _, c := range cases {
		if _, err := synth.Parse(c.spec); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) = %v, want mention of %q", c.spec, err, c.want)
		}
	}
}

// Unannotated tasks must be invisible to RaCCD: with every annotation
// dropped, RaCCD deactivates nothing (the JPEG worst case), while the
// fully annotated twin deactivates most of its traffic.
func TestUnannotatedStressesRaCCD(t *testing.T) {
	run := func(frac float64) sim.Result {
		p := smallParams(t, "chain")
		p.Unannotated = frac
		w, err := synth.New(p)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(w, sim.DefaultConfig(coherence.RaCCD, 1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	annotated, blind := run(0), run(1)
	if blind.NCFraction != 0 {
		t.Fatalf("fully unannotated run still deactivated %.1f%% of blocks", blind.NCFraction*100)
	}
	if annotated.NCFraction == 0 {
		t.Fatal("annotated chain deactivated nothing; generator is not annotating")
	}
	if blind.DirAccesses <= annotated.DirAccesses {
		t.Fatalf("dropping annotations should raise directory pressure: %d <= %d",
			blind.DirAccesses, annotated.DirAccesses)
	}
}

// Scaling changes depth, not identity.
func TestScaled(t *testing.T) {
	p, _ := synth.Default("chain")
	s := p.Scaled(0.25)
	if s.Depth != p.Depth/4 {
		t.Fatalf("Scaled(0.25) depth = %d, want %d", s.Depth, p.Depth/4)
	}
	if tiny := p.Scaled(0.0001); tiny.Depth != 1 {
		t.Fatalf("scale floor: depth = %d, want 1", tiny.Depth)
	}
	// The registry keeps the unscaled spec as the workload's identity.
	w, err := workloads.Get("synth:chain", 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "synth:chain" {
		t.Fatalf("scaled registry workload renamed to %q", w.Name())
	}
	g := rts.NewGraph()
	w.Build(g)
	full, err := workloads.Get("synth:chain", 1.0)
	if err != nil {
		t.Fatal(err)
	}
	gf := rts.NewGraph()
	full.Build(gf)
	if g.NumTasks() >= gf.NumTasks() {
		t.Fatalf("scale 0.25 built %d tasks, full scale %d", g.NumTasks(), gf.NumTasks())
	}
}

// Regression: mixed with a single pool range must clamp its random pick
// count, not slice past the permutation (found in review).
func TestMixedWidthOne(t *testing.T) {
	w, err := synth.New(synth.Params{Preset: "mixed", Seed: 3, Width: 1, Depth: 8, BlocksPerTask: 2, SharedBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	g := rts.NewGraph()
	w.Build(g) // panicked before the clamp
	if g.NumTasks() != 9 {
		t.Fatalf("built %d tasks, want 9", g.NumTasks())
	}
}

// Regression: NaN sneaks past naive range checks; the spec must reject it.
func TestUnannotatedNaNRejected(t *testing.T) {
	if _, err := synth.Parse("chain/unannotated=NaN"); err == nil || !strings.Contains(err.Error(), "[0, 1]") {
		t.Fatalf("NaN accepted: %v", err)
	}
}
