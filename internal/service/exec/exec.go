// Package exec is the execution layer of the simulation service: it
// materializes validated wire requests into sim.Configs and runs them —
// through the result store for global dedupe, through internal/runner
// for sweep fan-out — returning exactly the CSV internal/report
// produces. It sits below the transport (HTTP handlers, the fabric
// Backend seam) and above the store; it owns the daemon's execution
// counters (per-engine simulation tallies, per-scheme run-latency
// histograms) so the stats and /metrics endpoints are a pure read.
package exec

import (
	"context"
	"fmt"
	"time"

	"raccd/client"
	"raccd/internal/coherence"
	"raccd/internal/machine"
	"raccd/internal/obs"
	"raccd/internal/report"
	"raccd/internal/resultstore"
	"raccd/internal/service/store"
	"raccd/internal/sim"
	"raccd/internal/workloads"
)

// Executor runs validated requests. Create with New; safe for
// concurrent use.
type Executor struct {
	st store.Store
	// simJobs is the per-sweep simulation parallelism (runner pool
	// width); 0 selects one worker per CPU.
	simJobs int
	metrics Metrics
}

// New returns an executor over st fanning sweeps across simJobs workers.
func New(st store.Store, simJobs int) *Executor {
	return &Executor{st: st, simJobs: simJobs}
}

// Store returns the executor's result store.
func (e *Executor) Store() store.Store { return e.st }

// Metrics returns the executor's counters for snapshotting.
func (e *Executor) Metrics() *Metrics { return &e.metrics }

// Scale resolves a request's problem scale (0 means 1.0).
func Scale(req client.RunRequest) float64 {
	if req.Scale == 0 {
		return 1.0
	}
	return req.Scale
}

// BuildConfig materializes a run request as a checked sim.Config. An
// empty engine selection falls back to the server default
// (defEngine/defShards).
func BuildConfig(r client.RunRequest, defEngine string, defShards int) (sim.Config, error) {
	mode, err := coherence.ParseMode(r.System)
	if err != nil {
		return sim.Config{}, err
	}
	mach, err := machine.Parse(r.Machine)
	if err != nil {
		return sim.Config{}, err
	}
	ratio := r.DirRatio
	if ratio == 0 {
		ratio = 1
	}
	cfg := sim.DefaultConfig(mode, ratio)
	cfg.Params = mach.Params()
	cfg.ADR = r.ADR
	cfg.Scheduler = r.Scheduler
	cfg.SMTWays = r.SMTWays
	if r.NCRTLatency != 0 {
		cfg.Params.NCRTLookupCycles = r.NCRTLatency
	}
	if r.NCRTEntries != 0 {
		cfg.Params.NCRTEntries = r.NCRTEntries
	}
	cfg.Params.WriteThrough = r.WriteThrough
	if r.Contiguity != 0 {
		if r.Contiguity < 0 || r.Contiguity > 1 {
			return sim.Config{}, fmt.Errorf("contiguity %g out of range [0, 1]", r.Contiguity)
		}
		cfg.Params.Contiguity = r.Contiguity
	}
	cfg.Validate = r.Validate == nil || *r.Validate
	cfg.Engine = r.Engine
	cfg.Shards = r.Shards
	if cfg.Engine == "" && cfg.Shards == 0 {
		cfg.Engine, cfg.Shards = defEngine, defShards
	}
	cfg.Core = mach.Core
	cfg.PrefetchDegree = mach.PrefetchDegree
	cfg.PrefetchDistance = mach.PrefetchDistance
	if r.Core != "" {
		cfg.Core = r.Core
	}
	if r.PrefetchDegree != 0 {
		cfg.PrefetchDegree = r.PrefetchDegree
	}
	if r.PrefetchDistance != 0 {
		cfg.PrefetchDistance = r.PrefetchDistance
	}
	return cfg, cfg.Check()
}

// BuildMatrix materializes a sweep request as a checked report.Matrix.
// An empty engine selection falls back to the server default. Execution
// wiring (cache, parallelism, hooks) is left to Sweep, so the matrix is
// safe to expand (Keys, NumRuns) without side effects.
func BuildMatrix(r client.SweepRequest, defEngine string, defShards int) (report.Matrix, error) {
	m := report.DefaultMatrix()
	m.ADR = r.ADR
	mach, err := machine.Parse(r.Machine)
	if err != nil {
		return report.Matrix{}, err
	}
	m.Machine = mach
	if len(r.Workloads) > 0 {
		m.Workloads = r.Workloads
	}
	if len(r.Systems) > 0 {
		m.Systems = m.Systems[:0]
		for _, name := range r.Systems {
			mode, err := coherence.ParseMode(name)
			if err != nil {
				return report.Matrix{}, err
			}
			m.Systems = append(m.Systems, mode)
		}
	}
	if len(r.Ratios) > 0 {
		m.Ratios = r.Ratios
	}
	if r.Scale != 0 {
		m.Scale = r.Scale
	}
	m.Validate = r.Validate == nil || *r.Validate
	m.Engine = r.Engine
	m.Shards = r.Shards
	if m.Engine == "" && m.Shards == 0 {
		m.Engine, m.Shards = defEngine, defShards
	}
	m.Core = r.Core
	m.PrefetchDegree = r.PrefetchDegree
	m.PrefetchDistance = r.PrefetchDistance
	// Validate the matrix up front: every workload must resolve and every
	// (system, ratio) cell must describe a runnable machine.
	for _, name := range m.Workloads {
		if _, err := workloads.Identity(name, m.Scale); err != nil {
			return report.Matrix{}, err
		}
	}
	for _, sys := range m.Systems {
		for _, ratio := range m.Ratios {
			cfg := sim.DefaultConfig(sys, ratio)
			cfg.Params = mach.Params()
			cfg.Engine = m.Engine
			cfg.Shards = m.Shards
			cfg.Core = m.Core
			cfg.PrefetchDegree = m.PrefetchDegree
			cfg.PrefetchDistance = m.PrefetchDistance
			if err := cfg.Check(); err != nil {
				return report.Matrix{}, err
			}
		}
	}
	return m, nil
}

// Run executes one simulation through the result store: the run is
// keyed by (cfg.Fingerprint, identity), recalled when cached, computed
// at most once per key otherwise (the store single-flights concurrent
// identical calls). It returns the run's report CSV (header + one row)
// and whether the result came from the cache. ctx aborts an in-flight
// simulation at its next task dispatch.
func (e *Executor) Run(ctx context.Context, cfg sim.Config, workload string, scale float64, identity string) (csv string, res sim.Result, cached bool, err error) {
	ph := obs.PhasesFrom(ctx)
	key := resultstore.KeyOf(cfg.Fingerprint(), identity)
	// total−simWall is the store phase: get/put IO, hashing, and — for a
	// coalesced caller — waiting on another goroutine's identical run.
	start := time.Now()
	var simWall time.Duration
	res, cached, err = e.st.GetOrCompute(key, func() (sim.Result, error) {
		// Cancellation between queueing and compute: don't start a
		// simulation nobody will wait for.
		if err := ctx.Err(); err != nil {
			return sim.Result{}, err
		}
		buildStart := time.Now()
		w, err := workloads.Get(workload, scale)
		if err != nil {
			return sim.Result{}, err
		}
		ph.Add(obs.PhaseBuild, time.Since(buildStart))
		simStart := time.Now()
		res, err := sim.RunContext(ctx, w, cfg)
		simWall = time.Since(simStart)
		if err == nil {
			e.metrics.Observe(cfg.Engine, cfg.System, simWall, res)
		}
		return res, err
	})
	ph.Add(obs.PhaseExec, simWall)
	ph.Add(obs.PhaseStore, time.Since(start)-simWall)
	if err != nil {
		return "", sim.Result{}, false, err
	}
	engine := cfg.Engine
	if engine == "" {
		engine = "seq"
	}
	obs.Log(ctx).Debug("run complete",
		"workload", workload, "system", cfg.System.String(), "ratio", cfg.DirRatio,
		"engine", engine, "cycles", res.Cycles, "cached", cached,
		"sim_ms", simWall.Milliseconds())
	return report.NewSet([]sim.Result{res}).CSV(), res, cached, nil
}

// Sweep executes a whole matrix through the store and the runner pool,
// returning the result set. The matrix's cache, parallelism and
// simulation hook are wired here so every sweep a server executes feeds
// the same counters.
func (e *Executor) Sweep(ctx context.Context, m report.Matrix, progress func(string)) (*report.Set, error) {
	m.Jobs = e.simJobs
	m.Cache = e.st
	m.Progress = progress
	m.OnSimulated = e.metrics.Observe
	return m.RunContext(ctx)
}

// RunLine formats the per-run progress line of a single-run job — the
// same shape on a local daemon and forwarded through the fabric.
func RunLine(res sim.Result, cached bool) string {
	tag := ""
	if cached {
		tag = " (cached)"
	}
	return fmt.Sprintf("%-9s %-8v 1:%-3d cycles=%d%s", res.Workload, res.System, res.DirRatio, res.Cycles, tag)
}
