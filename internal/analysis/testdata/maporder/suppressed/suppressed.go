// Package report is maporder directive-suppression testdata: the map
// range is order-sensitive but annotated, so the analyzer stays silent.
package report

func observe(m map[string]float64, record func(string, float64)) {
	for k, v := range m { //raccd:unordered-ok each key feeds its own accumulator; cross-key order is commutative
		record(k, v)
	}
}
