// Command sweep regenerates the paper's evaluation: every figure (2, 6,
// 7a-7d, 8, 9, 10), Table III, and the §V-C NCRT latency sensitivity study.
//
// Usage:
//
//	sweep                  # everything at full (÷16-scaled) size
//	sweep -fig 6           # a single figure
//	sweep -table 3         # Table III only
//	sweep -fig vc          # NCRT latency study
//	sweep -scale 0.25      # faster, smaller problems
//	sweep -jobs 8          # run 8 simulations concurrently (0 = all CPUs)
//	sweep -csv results.csv # also dump raw results
//	sweep -synth chain/seed=7,stencil   # add synthetic workloads to the matrix
//	sweep -trace run.rtf   # add a recorded RTF trace to the matrix
//	sweep -cache ~/.raccd  # memoize runs in a content-addressed store
//	sweep -machine m64     # the whole evaluation on a 64-core machine
//	sweep -machines paper16,m32,m64     # Fig 2 across machine presets
//	sweep -remote http://h1:8080,http://h2:8080
//	                       # simulate on raccdd daemons, render locally
//
// Simulations fan out across -jobs workers (default: one per CPU) with
// results — figures, CSV, progress lines — identical to a sequential
// run. Ctrl-C cancels the sweep cleanly.
//
// With -cache DIR every run is keyed by its configuration fingerprint and
// workload identity and served from the store when present, so repeated
// sweeps cost only the runs that changed. The same directory can back a
// raccdd daemon (see docs/SERVICE.md): offline sweeps and served requests
// share one cache, and cached output is byte-identical to simulating.
//
// With -remote the simulations run on a fleet of raccdd daemons instead:
// each endpoint receives its rendezvous-hashed partition of the matrix as
// one batch job, identical runs dedupe in the endpoints' caches
// fleet-wide, and the merged results render locally — figures and CSV
// byte-identical to a local sweep.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"raccd"
	"raccd/internal/report"
	"raccd/internal/resultstore"     //raccd:layering-ok -cache shares the daemon's on-disk store; the store is service plumbing with no public mirror
	"raccd/internal/workloads/synth" //raccd:layering-ok -synth validates/canonicalizes spec strings client-side before any run is spent
)

// figureOrder is every figure the sweep can render, in print order.
var figureOrder = []string{"2", "6", "7a", "7b", "7c", "7d", "8", "9", "10"}

// run parses args and executes the sweep, writing figures to stdout and
// diagnostics to stderr. It returns the process exit code; ctx cancels
// an in-flight sweep.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		fig      = fs.String("fig", "", "only this figure: 2, 6, 7a, 7b, 7c, 7d, 8, 9, 10, vc")
		tbl      = fs.String("table", "", "only this table: 1, 2, 3")
		machName = fs.String("machine", "", "machine preset for every run: paper16 (default), m32, m64, or a power-of-two core count")
		machList = fs.String("machines", "", "comma-separated machine presets: run the Fig 2 matrix once per machine and print the cross-machine comparison")
		scale    = fs.Float64("scale", 1.0, "problem scale (1.0 = Table II ÷ 16)")
		jobs     = fs.Int("jobs", 0, "concurrent simulations (0 = one per CPU, 1 = sequential)")
		engine   = fs.String("engine", "", "per-run execution engine: seq (default) or epoch; metric-identical, epoch spreads one run across host CPUs")
		shards   = fs.Int("shards", 0, "epoch engine worker count (0 = one per host CPU)")
		core     = fs.String("core", "", "core timing model for every run: simple (default) or ooo; changes the simulated machine, unlike -engine")
		prefetch = fs.Int("prefetch", 0, "delta prefetcher degree for every run (blocks per trained trigger; 0 = off)")
		pfDist   = fs.Int("prefetch-distance", 0, "prefetcher look-ahead in strides (0 = default 4; needs -prefetch)")
		csvPath  = fs.String("csv", "", "write raw results as CSV to this file")
		synths   = fs.String("synth", "", "synthetic workload spec(s) to add to the matrix, comma-separated: preset[/key=val]...")
		traces   = fs.String("trace", "", "RTF trace file(s) to add to the matrix, comma-separated")
		only     = fs.Bool("only-extra", false, "run only the -synth/-trace workloads, not the paper set")
		cache    = fs.String("cache", "", "memoize runs in this result-store directory (shareable with raccdd)")
		remote   = fs.String("remote", "", "comma-separated raccdd endpoints: simulate on the fleet instead of locally, one batch per endpoint (rendezvous-partitioned), figures rendered here")
		quiet    = fs.Bool("q", false, "suppress per-run progress")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}

	mach, err := raccd.ParseMachine(*machName)
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 2
	}
	var machines []raccd.Machine
	for _, name := range strings.Split(*machList, ",") {
		if name = strings.TrimSpace(name); name != "" {
			mc, err := raccd.ParseMachine(name)
			if err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 2
			}
			machines = append(machines, mc)
		}
	}

	if len(machines) > 0 && *tbl != "" {
		fmt.Fprintln(stderr, "sweep: -machines renders the Fig 2 comparison; use -machine to pick a table's machine")
		return 2
	}

	var endpoints []string
	for _, e := range strings.Split(*remote, ",") {
		if e = strings.TrimSpace(e); e != "" {
			endpoints = append(endpoints, e)
		}
	}
	if len(endpoints) > 0 {
		// Remote execution ships plain run requests; the matrix variants
		// that need in-process hooks stay local-only.
		switch {
		case len(machines) > 0:
			fmt.Fprintln(stderr, "sweep: -remote cannot run the -machines comparison; run it per machine with -machine")
			return 2
		case *fig == "vc":
			fmt.Fprintln(stderr, "sweep: -remote cannot run the NCRT latency study; it needs in-process latency overrides")
			return 2
		case *cache != "":
			fmt.Fprintln(stderr, "sweep: -remote uses the endpoints' caches; drop -cache")
			return 2
		}
	}

	switch *tbl {
	case "1":
		fmt.Fprintln(stdout, report.Table1For(mach.Params()))
		return 0
	case "2":
		fmt.Fprintln(stdout, report.Table2())
		return 0
	case "3":
		fmt.Fprintln(stdout, report.Table3For(mach.Params()))
		return 0
	case "":
	default:
		fmt.Fprintf(stderr, "sweep: unknown table %q (want 1, 2 or 3)\n", *tbl)
		fs.Usage()
		return 2
	}

	// Validate -fig before spending hours on the sweep.
	figures := map[string]bool{"vc": true}
	for _, k := range figureOrder {
		figures[k] = true
	}
	if *fig != "" && !figures[*fig] {
		fmt.Fprintf(stderr, "sweep: unknown figure %q (want 2, 6, 7a, 7b, 7c, 7d, 8, 9, 10 or vc)\n", *fig)
		fs.Usage()
		return 2
	}

	m := report.DefaultMatrix()
	m.Scale = *scale
	m.Jobs = *jobs
	m.Machine = mach
	m.Engine = *engine
	m.Shards = *shards
	m.Core = *core
	m.PrefetchDegree = *prefetch
	m.PrefetchDistance = *pfDist
	var extra []string
	for _, s := range strings.Split(*synths, ",") {
		if s = strings.TrimSpace(s); s != "" {
			extra = append(extra, synth.Canonical(s))
		}
	}
	for _, p := range strings.Split(*traces, ",") {
		if p = strings.TrimSpace(p); p != "" {
			extra = append(extra, "trace:"+p)
		}
	}
	if *only {
		if len(extra) == 0 {
			fmt.Fprintln(stderr, "sweep: -only-extra without -synth or -trace")
			return 2
		}
		m.Workloads = extra
	} else {
		m.Workloads = append(m.Workloads, extra...)
	}
	if !*quiet {
		m.Progress = func(msg string) { fmt.Fprintln(stderr, msg) }
	}
	if *cache != "" {
		store, err := resultstore.Open(*cache)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 2
		}
		m.Cache = store
		defer func() {
			st := store.Stats()
			fmt.Fprintf(stderr, "cache %s: %d hits, %d simulated, %d objects (%d KiB)\n",
				*cache, st.Hits+st.Coalesced, st.Misses, st.Objects, st.Bytes/1024)
		}()
	}

	// -machines: run the Fig 2 matrix once per named machine and print the
	// cross-machine comparison (how the deactivation opportunity moves as
	// the chip grows).
	if len(machines) > 0 {
		if *fig != "" && *fig != "2" {
			fmt.Fprintln(stderr, "sweep: -machines renders the Fig 2 comparison; combine it only with -fig 2")
			return 2
		}
		m.Ratios = []int{1}
		m.ADR = false
		sets, err := m.RunMachinesContext(ctx, machines)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		fmt.Fprintln(stdout, report.Fig2AcrossMachines(sets))
		if *csvPath != "" {
			var all strings.Builder
			for _, ms := range sets {
				fmt.Fprintf(&all, "# machine %s\n%s", ms.Machine.Name(), ms.Set.CSV())
			}
			if err := os.WriteFile(*csvPath, []byte(all.String()), 0o644); err != nil {
				fmt.Fprintln(stderr, "sweep:", err)
				return 1
			}
			fmt.Fprintf(stderr, "raw results written to %s\n", *csvPath)
		}
		return 0
	}

	if *fig == "vc" {
		cycles, err := m.RunNCRTSweepContext(ctx)
		if err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		fmt.Fprintln(stdout, report.NCRTLatencyTable(report.NCRTLatencies, cycles))
		return 0
	}

	// Figures 2 and 8 only need 1:1 runs; trim the matrix when possible.
	switch *fig {
	case "2", "8":
		m.Ratios = []int{1}
		m.ADR = false
	case "9", "10":
		m.Ratios = []int{1}
	}

	var set *report.Set
	if len(endpoints) > 0 {
		set, err = runRemote(ctx, m, *machName, endpoints)
	} else {
		set, err = m.RunContext(ctx)
	}
	if err != nil {
		fmt.Fprintln(stderr, "sweep:", err)
		return 1
	}

	render := map[string]func() string{
		"2": set.Fig2, "6": set.Fig6, "7a": set.Fig7a, "7b": set.Fig7b,
		"7c": set.Fig7c, "7d": set.Fig7d, "8": set.Fig8, "9": set.Fig9,
		"10": set.Fig10,
	}
	if *fig != "" {
		fmt.Fprintln(stdout, render[*fig]())
	} else {
		for _, k := range figureOrder {
			fmt.Fprintln(stdout, render[k]())
		}
		fmt.Fprintln(stdout, report.Table1For(mach.Params()))
		fmt.Fprintln(stdout, report.Table2())
		fmt.Fprintln(stdout, report.Table3For(mach.Params()))
	}

	if *csvPath != "" {
		if err := os.WriteFile(*csvPath, []byte(set.CSV()), 0o644); err != nil {
			fmt.Fprintln(stderr, "sweep:", err)
			return 1
		}
		fmt.Fprintf(stderr, "raw results written to %s\n", *csvPath)
	}
	return 0
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal: cancel the sweep, let in-flight simulations
		// finish. Second signal: default handling, i.e. die now.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
