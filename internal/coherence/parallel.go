package coherence

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// parallelTiles runs fn(i) for i in [0, n) across host CPUs. It is for
// per-tile work that is independent and deterministic per index —
// construction of tile-private structures, read-only invariant walks — so
// the execution order can never affect results. On a single-CPU host (or
// for tiny n) it degenerates to the plain loop.
func parallelTiles(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
