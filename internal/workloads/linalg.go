package workloads

import (
	"fmt"

	"raccd/internal/mem"
	"raccd/internal/rts"
)

// NewCG builds the conjugate gradient solver (Table II: 3D matrix with
// N³ = 884736 ÷ 16 = 55296 unknowns, 3 iterations), matrix-free with a
// 7-point stencil operator. Each iteration chains five chunked phases
// (SpMV, dot, axpy, dot, p-update) through scalar reduction tasks, so the
// same vector chunks are touched by different phases that the dynamic
// scheduler places on different cores — the temporarily-private pattern
// where RaCCD shines over PT (Fig 2).
func NewCG(scale float64) Workload {
	n := scaled(55296, scale, 4096) // unknowns
	const iters = 3
	const chunks = 16
	return New("CG", func(g *rts.Graph) {
		a := NewArena()
		vecBytes := n * 4
		x := a.Alloc(vecBytes)
		r := a.Alloc(vecBytes)
		p := a.Alloc(vecBytes)
		q := a.Alloc(vecBytes)
		partA := a.Alloc(chunks * mem.BlockSize) // dot(p,q) partials
		partB := a.Alloc(chunks * mem.BlockSize) // dot(r,r) partials
		alpha := a.Alloc(mem.BlockSize)
		beta := a.Alloc(mem.BlockSize)

		xC := Chunks(x, chunks)
		rC := Chunks(r, chunks)
		pC := Chunks(p, chunks)
		qC := Chunks(q, chunks)
		partAC := Chunks(partA, chunks)
		partBC := Chunks(partB, chunks)

		// halo extends a chunk by one block on each side within vec.
		halo := func(vec mem.Range, c mem.Range) mem.Range {
			lo, hi := c.Start, c.End()
			if lo > vec.Start {
				lo -= mem.BlockSize
			}
			if hi < vec.End() {
				hi += mem.BlockSize
			}
			return mem.Range{Start: lo, Size: uint64(hi - lo)}
		}

		for t := 0; t < iters; t++ {
			// q = A·p (stencil SpMV).
			for c := 0; c < chunks; c++ {
				in, out := halo(p, pC[c]), qC[c]
				g.Add(fmt.Sprintf("spmv[%d,%d]", t, c),
					[]rts.Dep{{Range: in, Mode: rts.In}, {Range: out, Mode: rts.Out}},
					func(ctx *rts.Ctx) { ctx.LoadRange(in); ctx.StoreRange(out) })
			}
			// partialA[c] = dot(p_c, q_c)
			for c := 0; c < chunks; c++ {
				in1, in2, out := pC[c], qC[c], partAC[c]
				g.Add(fmt.Sprintf("dotpq[%d,%d]", t, c),
					[]rts.Dep{{Range: in1, Mode: rts.In}, {Range: in2, Mode: rts.In}, {Range: out, Mode: rts.Out}},
					func(ctx *rts.Ctx) { ctx.LoadRange(in1); ctx.LoadRange(in2); ctx.StoreRange(out) })
			}
			// alpha = rr / Σ partialA
			g.Add(fmt.Sprintf("alpha[%d]", t),
				[]rts.Dep{{Range: partA, Mode: rts.In}, {Range: alpha, Mode: rts.Out}},
				func(ctx *rts.Ctx) { ctx.LoadRange(partA); ctx.StoreRange(alpha) })
			// x += alpha·p ; r -= alpha·q
			for c := 0; c < chunks; c++ {
				pc, qc, xc, rc := pC[c], qC[c], xC[c], rC[c]
				g.Add(fmt.Sprintf("axpy[%d,%d]", t, c),
					[]rts.Dep{
						{Range: alpha, Mode: rts.In},
						{Range: pc, Mode: rts.In}, {Range: qc, Mode: rts.In},
						{Range: xc, Mode: rts.InOut}, {Range: rc, Mode: rts.InOut},
					},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(alpha)
						ctx.LoadRange(pc)
						ctx.LoadRange(qc)
						ctx.LoadRange(xc)
						ctx.StoreRange(xc)
						ctx.LoadRange(rc)
						ctx.StoreRange(rc)
					})
			}
			// partialB[c] = dot(r_c, r_c)
			for c := 0; c < chunks; c++ {
				in, out := rC[c], partBC[c]
				g.Add(fmt.Sprintf("dotrr[%d,%d]", t, c),
					[]rts.Dep{{Range: in, Mode: rts.In}, {Range: out, Mode: rts.Out}},
					func(ctx *rts.Ctx) { ctx.LoadRange(in); ctx.StoreRange(out) })
			}
			// beta = Σ partialB / rr_old
			g.Add(fmt.Sprintf("beta[%d]", t),
				[]rts.Dep{{Range: partB, Mode: rts.In}, {Range: beta, Mode: rts.Out}},
				func(ctx *rts.Ctx) { ctx.LoadRange(partB); ctx.StoreRange(beta) })
			// p = r + beta·p
			for c := 0; c < chunks; c++ {
				rc, pc := rC[c], pC[c]
				g.Add(fmt.Sprintf("pup[%d,%d]", t, c),
					[]rts.Dep{
						{Range: beta, Mode: rts.In}, {Range: rc, Mode: rts.In},
						{Range: pc, Mode: rts.InOut},
					},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(beta)
						ctx.LoadRange(rc)
						ctx.LoadRange(pc)
						ctx.StoreRange(pc)
					})
			}
		}
	})
}

// NewCholesky builds the tiled Cholesky factorisation of Fig 1: an NT×NT
// grid of tile-major tiles processed by potrf/trsm/syrk/gemm tasks with the
// exact dependence clauses of the paper's listing.
func NewCholesky(scale float64) Workload {
	nt := int(scaled(8, scale, 3))   // tiles per dimension
	tileBytes := uint64(96 * 96 * 4) // 96×96 float32 tiles, tile-major
	return New("Cholesky", func(g *rts.Graph) {
		a := NewArena()
		matrix := a.Alloc(uint64(nt*nt) * tileBytes)
		tile := func(i, j int) mem.Range {
			return mem.Range{
				Start: matrix.Start + mem.Addr(uint64(i*nt+j)*tileBytes),
				Size:  tileBytes,
			}
		}
		for j := 0; j < nt; j++ {
			for k := 0; k < j; k++ {
				for i := j + 1; i < nt; i++ {
					aik, ajk, aij := tile(i, k), tile(j, k), tile(i, j)
					g.Add(fmt.Sprintf("gemm[%d,%d,%d]", i, j, k),
						[]rts.Dep{
							{Range: aik, Mode: rts.In}, {Range: ajk, Mode: rts.In},
							{Range: aij, Mode: rts.InOut},
						},
						func(ctx *rts.Ctx) {
							ctx.LoadRange(aik)
							ctx.LoadRange(ajk)
							ctx.LoadRange(aij)
							ctx.StoreRange(aij)
						})
				}
			}
			for i := j + 1; i < nt; i++ {
				aji, ajj := tile(j, i), tile(j, j)
				g.Add(fmt.Sprintf("syrk[%d,%d]", j, i),
					[]rts.Dep{{Range: aji, Mode: rts.In}, {Range: ajj, Mode: rts.InOut}},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(aji)
						ctx.LoadRange(ajj)
						ctx.StoreRange(ajj)
					})
			}
			ajj := tile(j, j)
			g.Add(fmt.Sprintf("potrf[%d]", j),
				[]rts.Dep{{Range: ajj, Mode: rts.InOut}},
				func(ctx *rts.Ctx) {
					ctx.LoadRange(ajj)
					ctx.StoreRange(ajj)
				})
			for i := j + 1; i < nt; i++ {
				ajj, aij := tile(j, j), tile(i, j)
				g.Add(fmt.Sprintf("trsm[%d,%d]", j, i),
					[]rts.Dep{{Range: ajj, Mode: rts.In}, {Range: aij, Mode: rts.InOut}},
					func(ctx *rts.Ctx) {
						ctx.LoadRange(ajj)
						ctx.LoadRange(aij)
						ctx.StoreRange(aij)
					})
			}
		}
	})
}
