// Command raccdd serves the simulator over HTTP: a job queue for single
// runs and whole evaluation sweeps, a content-addressed result cache that
// deduplicates identical simulations across all clients, SSE progress
// streams, and results as exactly the CSV `sweep -csv` writes. See
// docs/SERVICE.md for the API and docs/OBSERVABILITY.md for the log,
// trace and profiling surface.
//
//	raccdd                              # listen on :8080, ephemeral cache
//	raccdd -addr :9090 -cache ~/.raccd  # persistent cache shared with
//	                                    # `sweep -cache ~/.raccd`
//	raccdd -max-cache-mb 512            # LRU-bound the cache
//	raccdd -engine epoch -shards 4      # default engine for requests
//	                                    # that name none (docs/ENGINE.md)
//	raccdd -workers http://h1:8080,http://h2:8080
//	                                    # coordinator mode: partition runs
//	                                    # across worker daemons by
//	                                    # rendezvous hash (docs/SERVICE.md)
//	raccdd -log-level debug             # per-run execution logs
//	raccdd -pprof-addr 127.0.0.1:6060   # opt-in net/http/pprof listener
//
// The daemon logs one JSON object per line on stderr (log/slog); job
// lines carry the request's trace ID so a grep for one trace follows a
// batch across a whole worker fleet.
//
// On SIGINT/SIGTERM the daemon stops accepting work, drains in-flight
// jobs for up to -drain (default 30s), then cancels whatever remains and
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"raccd/internal/obs"         //raccd:layering-ok the daemon owns the process: it constructs the JSON logger the service layer only consumes
	"raccd/internal/resultstore" //raccd:layering-ok the daemon opens/evicts the on-disk store it hands to service.Options
	"raccd/internal/service"
)

// run parses args, starts the daemon and blocks until ctx is cancelled
// and the drain completes. It returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("raccdd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr       = fs.String("addr", ":8080", "listen address")
		cacheDir   = fs.String("cache", "", "result cache directory (default: a fresh temp dir)")
		maxCacheMB = fs.Uint64("max-cache-mb", 0, "cache size bound in MiB (0 = unbounded)")
		jobs       = fs.Int("jobs", 0, "concurrent simulations per job (0 = one per CPU)")
		jobWorkers = fs.Int("job-workers", 2, "jobs executed concurrently")
		queueDepth = fs.Int("queue", 64, "max queued jobs before submissions get 503")
		engine     = fs.String("engine", "", "default execution engine for requests that name none: seq or epoch (metric-identical)")
		shards     = fs.Int("shards", 0, "epoch engine worker count (0 = one per host CPU)")
		drain      = fs.Duration("drain", 30*time.Second, "shutdown deadline for in-flight jobs")
		workers    = fs.String("workers", "", "comma-separated worker raccdd URLs; runs execute on the fleet instead of in-process, partitioned by rendezvous hash")
		inflight   = fs.Int("worker-inflight", 0, "max runs dispatched concurrently to each worker (0 = default)")
		logLevel   = fs.String("log-level", "info", "minimum log level: debug, info, warn or error (debug adds a line per executed run)")
		pprofAddr  = fs.String("pprof-addr", "", "serve net/http/pprof on this address (empty = disabled)")
	)
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return 0
		}
		return 2
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintln(stderr, "raccdd: bad -log-level:", err)
		return 2
	}

	dir := *cacheDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "raccdd-cache-")
		if err != nil {
			fmt.Fprintln(stderr, "raccdd:", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "raccdd:", err)
		return 1
	}
	return serve(ctx, serveOptions{
		cacheDir:       dir,
		maxBytes:       *maxCacheMB << 20,
		simJobs:        *jobs,
		jobWorkers:     *jobWorkers,
		queueDepth:     *queueDepth,
		engine:         *engine,
		shards:         *shards,
		drain:          *drain,
		workers:        splitList(*workers),
		workerInFlight: *inflight,
		logLevel:       level,
		pprofAddr:      *pprofAddr,
	}, ln, stdout, stderr)
}

// splitList parses a comma-separated flag value, dropping empty entries
// so trailing commas are harmless.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// serveOptions carries the resolved daemon configuration.
type serveOptions struct {
	cacheDir       string
	maxBytes       uint64
	simJobs        int
	jobWorkers     int
	queueDepth     int
	engine         string
	shards         int
	drain          time.Duration
	workers        []string
	workerInFlight int
	logLevel       slog.Level
	pprofAddr      string
}

// pprofMux builds a mux exposing the standard /debug/pprof endpoints.
// The daemon keeps profiling off its service listener: it binds only
// when -pprof-addr is set, on an address the operator chose.
func pprofMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// serve runs the daemon on an already-bound listener until ctx is
// cancelled, then drains. Split from run so tests can bind :0 themselves.
func serve(ctx context.Context, opts serveOptions, ln net.Listener, stdout, stderr io.Writer) int {
	logger := obs.NewLogger(stderr, opts.logLevel)
	store, err := resultstore.Open(opts.cacheDir)
	if err != nil {
		logger.Error("startup failed", "err", err.Error())
		ln.Close()
		return 1
	}
	store.MaxBytes = opts.maxBytes
	svc, err := service.New(service.Options{
		Store:          store,
		SimJobs:        opts.simJobs,
		JobWorkers:     opts.jobWorkers,
		QueueDepth:     opts.queueDepth,
		Engine:         opts.engine,
		Shards:         opts.shards,
		Workers:        opts.workers,
		WorkerInFlight: opts.workerInFlight,
		Logger:         logger,
	})
	if err != nil {
		logger.Error("startup failed", "err", err.Error())
		ln.Close()
		return 1
	}

	hs := &http.Server{Handler: svc.Handler()}
	logger.Info("listening", "addr", ln.Addr().String(), "cache", opts.cacheDir)
	if len(opts.workers) > 0 {
		logger.Info("coordinating workers", "count", len(opts.workers), "workers", opts.workers)
	}
	var ps *http.Server
	if opts.pprofAddr != "" {
		pln, err := net.Listen("tcp", opts.pprofAddr)
		if err != nil {
			logger.Error("pprof listen failed", "addr", opts.pprofAddr, "err", err.Error())
			sctx, scancel := context.WithTimeout(context.Background(), time.Second)
			svc.Shutdown(sctx)
			scancel()
			ln.Close()
			return 1
		}
		ps = &http.Server{Handler: pprofMux()}
		logger.Info("pprof listening", "addr", pln.Addr().String())
		go ps.Serve(pln)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		logger.Error("serve failed", "err", err.Error())
		return 1
	case <-ctx.Done():
	}

	// Drain: finish in-flight jobs under the deadline, then close the
	// HTTP side (SSE streams have received their terminal events by now).
	logger.Info("shutting down, draining jobs", "deadline", opts.drain.String())
	drainCtx, cancel := context.WithTimeout(context.Background(), opts.drain)
	defer cancel()
	code := 0
	if err := svc.Shutdown(drainCtx); err != nil {
		logger.Warn("drain deadline hit, in-flight jobs canceled")
		code = 1
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := hs.Shutdown(httpCtx); err != nil {
		hs.Close()
	}
	if ps != nil {
		ps.Close()
	}
	st := svc.Stats()
	logger.Info("served runs, bye",
		"runs_completed", st.RunsCompleted, "sims_run", st.SimsRun, "cache_hits", st.CacheHits)
	return code
}

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		// First signal: drain. Second signal: default handling, die now.
		<-ctx.Done()
		stop()
	}()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}
