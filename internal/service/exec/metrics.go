package exec

import (
	"sort"
	"sync"
	"time"

	"raccd/internal/coherence"
	"raccd/internal/sim"
)

// LatencyBuckets are the upper bounds (seconds) of the per-scheme
// run-latency histogram, Prometheus classic style: cumulative
// `le`-labeled buckets with a +Inf bucket implied by the count.
var LatencyBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Metrics accumulates the executor's counters: how many simulations
// each engine executed (cache hits are not sims) and how executed-run
// latency distributes per coherence scheme. The zero value is ready.
type Metrics struct {
	mu       sync.Mutex
	engines  map[string]*engineCount
	schemes  map[string]*histogram
	phases   map[string]*histogram
	prefetch PrefetchTotals
}

type engineCount struct {
	sims    uint64
	seconds float64
	// Host-side wall split the engine itself reported (nonzero only for
	// engines that record one, i.e. epoch's generation vs serial commit).
	genSeconds    float64
	commitSeconds float64
}

// histogram is one scheme's latency distribution: per-bucket (non-
// cumulative) counts plus sum and total.
type histogram struct {
	counts []uint64 // len(LatencyBuckets)+1; last is the +Inf overflow
	sum    float64
	total  uint64
}

// Observe records one executed simulation. Matches the
// report.Matrix.OnSimulated hook signature; safe for concurrent use.
func (m *Metrics) Observe(engine string, system coherence.Mode, elapsed time.Duration, res sim.Result) {
	if engine == "" {
		engine = "seq"
	}
	secs := elapsed.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.engines == nil {
		m.engines = make(map[string]*engineCount)
		m.schemes = make(map[string]*histogram)
	}
	ec := m.engines[engine]
	if ec == nil {
		ec = &engineCount{}
		m.engines[engine] = ec
	}
	ec.sims++
	ec.seconds += secs
	ec.genSeconds += res.EngineGenSeconds
	ec.commitSeconds += res.EngineCommitSeconds

	name := system.String()
	h := m.schemes[name]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(LatencyBuckets)+1)}
		m.schemes[name] = h
	}
	i := sort.SearchFloat64s(LatencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.total++

	m.prefetch.Issued += res.PrefetchIssued
	m.prefetch.Useful += res.PrefetchUseful
	m.prefetch.Late += res.PrefetchLate
}

// PrefetchTotals accumulates the prefetcher counters of every executed
// simulation (zero while no run armed a prefetcher).
type PrefetchTotals struct {
	Issued uint64
	Useful uint64
	Late   uint64
}

// Prefetch returns the accumulated prefetcher counters.
func (m *Metrics) Prefetch() PrefetchTotals {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.prefetch
}

// ObservePhase records one finished job's wall time in the named phase
// (queue_wait, build, exec, store, fabric_rtt); safe for concurrent use.
func (m *Metrics) ObservePhase(name string, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.phases == nil {
		m.phases = make(map[string]*histogram)
	}
	h := m.phases[name]
	if h == nil {
		h = &histogram{counts: make([]uint64, len(LatencyBuckets)+1)}
		m.phases[name] = h
	}
	i := sort.SearchFloat64s(LatencyBuckets, secs)
	h.counts[i]++
	h.sum += secs
	h.total++
}

// PhaseSnapshot returns a coherent copy of the per-phase histograms.
func (m *Metrics) PhaseSnapshot() map[string]HistogramSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(m.phases))
	for name, h := range m.phases {
		out[name] = HistogramSnapshot{
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			Total:  h.total,
		}
	}
	return out
}

// EngineSnapshot is one engine's executed-simulation tally.
type EngineSnapshot struct {
	Sims    uint64
	Seconds float64
	// Generation vs serial-commit wall split, summed over the engine's
	// runs; zero for engines that don't report one (seq).
	GenSeconds    float64
	CommitSeconds float64
}

// SimsPerSec is the engine's throughput over its own busy time.
func (e EngineSnapshot) SimsPerSec() float64 {
	if e.Seconds <= 0 {
		return 0
	}
	return float64(e.Sims) / e.Seconds
}

// HistogramSnapshot is one scheme's latency distribution. Counts[i] is
// the number of observations at or below LatencyBuckets[i]; the last
// element is the +Inf overflow. Cumulative rendering is the exporter's
// job.
type HistogramSnapshot struct {
	Counts []uint64
	Sum    float64
	Total  uint64
}

// Snapshot returns a coherent copy of all counters.
func (m *Metrics) Snapshot() (engines map[string]EngineSnapshot, schemes map[string]HistogramSnapshot) {
	m.mu.Lock()
	defer m.mu.Unlock()
	engines = make(map[string]EngineSnapshot, len(m.engines))
	for name, ec := range m.engines {
		engines[name] = EngineSnapshot{
			Sims: ec.sims, Seconds: ec.seconds,
			GenSeconds: ec.genSeconds, CommitSeconds: ec.commitSeconds,
		}
	}
	schemes = make(map[string]HistogramSnapshot, len(m.schemes))
	for name, h := range m.schemes {
		schemes[name] = HistogramSnapshot{
			Counts: append([]uint64(nil), h.counts...),
			Sum:    h.sum,
			Total:  h.total,
		}
	}
	return engines, schemes
}
