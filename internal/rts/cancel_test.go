package rts

import (
	"errors"
	"testing"

	"raccd/internal/mem"
)

// nullMachine is a zero-latency machine for runtime-only tests.
type nullMachine struct{}

func (nullMachine) Access(int, mem.Addr, bool, uint64) uint64 { return 0 }
func (nullMachine) RegisterRegion(int, mem.Range) uint64      { return 0 }
func (nullMachine) InvalidateNC(int) uint64                   { return 0 }

// TestRunCancel: a tripped Cancel hook aborts the dispatch loop without
// executing further tasks.
func TestRunCancel(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 8; i++ {
		g.Add("t", nil, func(c *Ctx) { c.Compute(10) })
	}
	errStop := errors.New("stop")
	var dispatched int
	rt := NewRuntime(nullMachine{}, 2, nil)
	rt.Cancel = func() error {
		dispatched++
		if dispatched > 3 {
			return errStop
		}
		return nil
	}
	rt.Run(g)
	if rt.Stats.TasksRun >= 8 {
		t.Fatalf("cancelled run executed all %d tasks", rt.Stats.TasksRun)
	}
	// An unset hook runs to completion.
	g2 := NewGraph()
	for i := 0; i < 8; i++ {
		g2.Add("t", nil, func(c *Ctx) { c.Compute(10) })
	}
	rt2 := NewRuntime(nullMachine{}, 2, nil)
	rt2.Run(g2)
	if rt2.Stats.TasksRun != 8 {
		t.Fatalf("uncancelled run executed %d tasks, want 8", rt2.Stats.TasksRun)
	}
}

// countingMachine counts accesses so tests can observe how far into a body
// a run got before stopping.
type countingMachine struct{ accesses uint64 }

func (m *countingMachine) Access(int, mem.Addr, bool, uint64) uint64 { m.accesses++; return 0 }
func (m *countingMachine) RegisterRegion(int, mem.Range) uint64      { return 0 }
func (m *countingMachine) InvalidateNC(int) uint64                   { return 0 }

// TestRunCancelMidTask: cancellation lands inside one long task body, not
// just at the next dispatch — the single-task cancellation gap. The graph
// is ONE task issuing far more accesses than cancelPollInterval; Cancel
// trips after the first in-body poll, and the run must stop long before
// the body completes.
func TestRunCancelMidTask(t *testing.T) {
	const bodyAccesses = 64 * cancelPollInterval
	for _, engine := range []string{"seq", "epoch"} {
		eng, err := ParseEngine(engine, map[string]int{"seq": 0, "epoch": 2}[engine])
		if err != nil {
			t.Fatal(err)
		}
		g := NewGraph()
		g.Add("long", nil, func(c *Ctx) {
			for i := 0; i < bodyAccesses; i++ {
				c.Load(mem.Addr(0x40_0000) + mem.Addr(i)*mem.BlockSize)
			}
		})
		errStop := errors.New("stop")
		var polls int
		m := &countingMachine{}
		rt := NewRuntime(m, 2, nil)
		rt.Engine = eng
		rt.Cancel = func() error {
			// First call is the dispatch-time poll; the next one is the
			// first in-body poll, which trips.
			polls++
			if polls > 1 {
				return errStop
			}
			return nil
		}
		if mk := rt.Run(g); mk != 0 {
			t.Fatalf("%s: cancelled run returned makespan %d, want 0", engine, mk)
		}
		// The body must have stopped at (or within one interval of) the
		// first poll, not run its full 64 intervals. Under the epoch
		// engine the commit replay may consume up to one extra interval
		// relative to the generation-side count; 2 intervals of slack
		// covers both engines with room to spare.
		if m.accesses > 2*cancelPollInterval+64 {
			t.Fatalf("%s: cancelled mid-task run still issued %d machine accesses (poll interval %d)",
				engine, m.accesses, cancelPollInterval)
		}
	}
}

// TestRunCancelMidCompute: cancellation lands inside a long pure-compute
// task body. Compute polls on the same cadence as Load/Store; before it
// did, a body looping over Compute alone held a cancelled run (and a
// draining raccdd) until the task finished. The bound is on the seq
// engine, where the body runs in place under the run's Cancel hook; the
// epoch engine pre-executes pure compute on workers (bounded by
// epochWindow) and replays it as a single addition, so no in-body bound
// applies there.
func TestRunCancelMidCompute(t *testing.T) {
	const bodyComputes = 64 * cancelPollInterval
	g := NewGraph()
	var computes int
	g.Add("crunch", nil, func(c *Ctx) {
		for i := 0; i < bodyComputes; i++ {
			computes++
			c.Compute(3)
		}
	})
	errStop := errors.New("stop")
	var polls int
	rt := NewRuntime(nullMachine{}, 2, nil)
	rt.Cancel = func() error {
		// First call is the dispatch-time poll; the next is the first
		// in-body poll, which trips.
		polls++
		if polls > 1 {
			return errStop
		}
		return nil
	}
	if mk := rt.Run(g); mk != 0 {
		t.Fatalf("cancelled run returned makespan %d, want 0", mk)
	}
	if computes > 2*cancelPollInterval+64 {
		t.Fatalf("cancelled mid-compute run still executed %d Compute calls (poll interval %d)",
			computes, cancelPollInterval)
	}
}
