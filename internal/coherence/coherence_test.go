package coherence

import (
	"testing"
	"testing/quick"

	"raccd/internal/cache"
	"raccd/internal/mem"
)

// tiny returns a 4-core machine with small caches so tests can force
// capacity pressure cheaply.
func tiny(mode Mode) *Hierarchy {
	p := Params{
		Cores:             4,
		L1Sets:            4,
		L1Ways:            2,
		LLCSetsPerBank:    8,
		LLCWays:           2,
		DirSetsPerBank:    8,
		DirWays:           2,
		DirMinSetsPerBank: 1,
		NCRTEntries:       8,
		NCRTLookupCycles:  1,
		TLBEntries:        16,
		L1HitCycles:       2,
		LLCCycles:         15,
		MemCycles:         160,
		Contiguity:        1.0,
		Seed:              1,
	}
	return New(mode, p)
}

func mustOK(t *testing.T, h *Hierarchy) {
	t.Helper()
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariant violated: %v", err)
	}
}

func TestReadMissThenHit(t *testing.T) {
	h := tiny(FullCoh)
	lat1 := h.Access(0, 0x1000, false, 0)
	if lat1 < h.Params.MemCycles {
		t.Fatalf("cold read latency %d below memory latency", lat1)
	}
	lat2 := h.Access(0, 0x1000, false, 0)
	if lat2 >= lat1 {
		t.Fatalf("L1 hit latency %d not below miss latency %d", lat2, lat1)
	}
	if h.Stats.L1Hits != 1 || h.Stats.L1Misses != 1 {
		t.Fatalf("stats %+v", h.Stats)
	}
	mustOK(t, h)
}

func TestWriteReadBackSameCore(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0x2000, true, 42)
	h.DrainAll()
	if got := h.VirtValue(0x2000); got != 42 {
		t.Fatalf("memory value = %d, want 42", got)
	}
}

func TestSharedReadersGetSState(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0x1000, false, 0)
	h.Access(1, 0x1000, false, 0)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	ln0, ok0 := h.L1(0).Peek(b)
	ln1, ok1 := h.L1(1).Peek(b)
	if !ok0 || !ok1 {
		t.Fatal("both readers should cache the block")
	}
	if ln0.State != cache.Shared || ln1.State != cache.Shared {
		t.Fatalf("states %v/%v, want S/S", ln0.State, ln1.State)
	}
	e, ok := h.Dir().Peek(b)
	if !ok || !e.HasSharer(0) || !e.HasSharer(1) {
		t.Fatal("directory must track both sharers")
	}
	mustOK(t, h)
}

func TestFirstReaderGetsExclusive(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(2, 0x3000, false, 0)
	pa, _ := h.MMU(2).Translate(0x3000)
	ln, ok := h.L1(2).Peek(mem.BlockOf(pa))
	if !ok || ln.State != cache.Exclusive {
		t.Fatalf("sole reader state = %v, want E", ln.State)
	}
	mustOK(t, h)
}

func TestWriteInvalidatesSharers(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0x1000, false, 0)
	h.Access(1, 0x1000, false, 0)
	h.Access(2, 0x1000, true, 7)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	if _, ok := h.L1(0).Peek(b); ok {
		t.Fatal("core 0 copy not invalidated by remote write")
	}
	if _, ok := h.L1(1).Peek(b); ok {
		t.Fatal("core 1 copy not invalidated by remote write")
	}
	ln, ok := h.L1(2).Peek(b)
	if !ok || ln.State != cache.Modified || ln.Val != 7 {
		t.Fatalf("writer line %+v, want M with val 7", ln)
	}
	if h.Stats.InvalidationsSent == 0 {
		t.Fatal("no invalidations accounted")
	}
	mustOK(t, h)
}

func TestUpgradeFromShared(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0x1000, false, 0)
	h.Access(1, 0x1000, false, 0) // both S
	h.Access(0, 0x1000, true, 9)  // S→M upgrade, hit in L1
	if h.Stats.Upgrades != 1 {
		t.Fatalf("Upgrades = %d, want 1", h.Stats.Upgrades)
	}
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	if _, ok := h.L1(1).Peek(b); ok {
		t.Fatal("stale sharer survived upgrade")
	}
	mustOK(t, h)
}

func TestDirtyForwardOnRemoteRead(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0x1000, true, 5) // M in core 0
	h.Access(1, 0x1000, false, 0)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	ln1, ok := h.L1(1).Peek(b)
	if !ok || ln1.Val != 5 {
		t.Fatalf("reader did not receive forwarded dirty value: %+v", ln1)
	}
	ln0, _ := h.L1(0).Peek(b)
	if ln0.State != cache.Shared || ln0.Dirty {
		t.Fatalf("owner not downgraded to clean S: %+v", ln0)
	}
	// The forwarded dirty value must also have reached the LLC.
	home := h.Dir().BankOf(b)
	lline, ok := h.LLCBank(home).Peek(b)
	if !ok || lline.Val != 5 {
		t.Fatal("downgrade did not write dirty data back to LLC")
	}
	mustOK(t, h)
}

func TestRemoteWriteTakesOwnershipFromM(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0x1000, true, 5)
	h.Access(1, 0x1000, true, 6)
	h.DrainAll()
	if got := h.VirtValue(0x1000); got != 6 {
		t.Fatalf("final value %d, want 6 (last writer)", got)
	}
}

func TestDirectoryEvictionInvalidatesLLC(t *testing.T) {
	h := tiny(FullCoh)
	// Bank 0 directory: 8 sets × 2 ways. Blocks that map to bank 0 and
	// the same directory set: block numbers b with b%4==0 and
	// (b/4)%8 == 0 → b ∈ {0, 128, 256, ...} in block units.
	addrs := []mem.Addr{0 * 64, 128 * 64, 256 * 64}
	for _, a := range addrs {
		h.Access(0, a, false, 0)
	}
	if h.Stats.DirVictimRecalls == 0 {
		t.Fatal("no directory capacity eviction occurred")
	}
	mustOK(t, h)
}

func TestDirEvictionWritesDirtyToMemory(t *testing.T) {
	h := tiny(FullCoh)
	h.Access(0, 0*64, true, 11) // M in L1
	h.Access(0, 128*64, false, 0)
	h.Access(0, 256*64, false, 0) // evicts one of the earlier dir entries
	h.DrainAll()
	if got := h.VirtValue(0); got != 11 {
		t.Fatalf("dirty data lost across directory recall: %d", got)
	}
}

func TestNCFillBypassesDirectory(t *testing.T) {
	h := tiny(RaCCD)
	r := mem.Range{Start: 0x8000, Size: 4096}
	h.RegisterRegion(0, r)
	before := h.Dir().Stats.Accesses
	h.Access(0, 0x8000, false, 0)
	h.Access(0, 0x8040, true, 3)
	if h.Dir().Stats.Accesses != before {
		t.Fatal("non-coherent accesses touched the directory")
	}
	if h.Stats.NCFills != 2 {
		t.Fatalf("NCFills = %d, want 2", h.Stats.NCFills)
	}
	pa, _ := h.MMU(0).Translate(0x8000)
	ln, ok := h.L1(0).Peek(mem.BlockOf(pa))
	if !ok || !ln.NC {
		t.Fatal("NC bit not set on filled line")
	}
	mustOK(t, h)
}

func TestUnregisteredAccessIsCoherentInRaCCD(t *testing.T) {
	h := tiny(RaCCD)
	h.Access(0, 0x8000, false, 0)
	if h.Stats.CohFills != 1 || h.Stats.NCFills != 0 {
		t.Fatalf("stats %+v", h.Stats)
	}
}

func TestRecoveryFlushWritesDirtyNC(t *testing.T) {
	h := tiny(RaCCD)
	r := mem.Range{Start: 0x8000, Size: 4096}
	h.RegisterRegion(0, r)
	h.Access(0, 0x8000, true, 77)
	lat := h.InvalidateNC(0)
	if lat < uint64(h.L1(0).Capacity()) {
		t.Fatalf("recovery latency %d below cache walk cost", lat)
	}
	if h.L1(0).ResidentNC() != 0 {
		t.Fatal("NC lines survived recovery")
	}
	if h.Stats.FlushedNCDirty != 1 {
		t.Fatalf("FlushedNCDirty = %d, want 1", h.Stats.FlushedNCDirty)
	}
	if h.NCRT(0).Len() != 0 {
		t.Fatal("NCRT not cleared by recovery")
	}
	// The dirty value must now be visible via the LLC to a later task.
	h.DrainAll()
	if got := h.VirtValue(0x8000); got != 77 {
		t.Fatalf("recovered value = %d, want 77", got)
	}
}

func TestRecoveryLeavesCoherentLinesAlone(t *testing.T) {
	h := tiny(RaCCD)
	h.Access(0, 0x100, true, 1) // coherent (unregistered)
	h.RegisterRegion(0, mem.Range{Start: 0x8000, Size: 64})
	h.Access(0, 0x8000, false, 0)
	h.InvalidateNC(0)
	pa, _ := h.MMU(0).Translate(0x100)
	if _, ok := h.L1(0).Peek(mem.BlockOf(pa)); !ok {
		t.Fatal("coherent line flushed by recovery")
	}
	mustOK(t, h)
}

func TestTransitionNCToCoherent(t *testing.T) {
	// Task 1 (core 0) writes a region NC; after recovery, core 1 reads it
	// coherently (no registration): dir entry must appear, value intact.
	h := tiny(RaCCD)
	h.RegisterRegion(0, mem.Range{Start: 0x8000, Size: 64})
	h.Access(0, 0x8000, true, 55)
	h.InvalidateNC(0)
	h.Access(1, 0x8000, false, 0)
	pa, _ := h.MMU(1).Translate(0x8000)
	b := mem.BlockOf(pa)
	if _, ok := h.Dir().Peek(b); !ok {
		t.Fatal("coherent access to ex-NC block created no directory entry")
	}
	ln, ok := h.L1(1).Peek(b)
	if !ok || ln.Val != 55 || ln.NC {
		t.Fatalf("reader line %+v, want coherent val 55", ln)
	}
	mustOK(t, h)
}

func TestTransitionCoherentToNC(t *testing.T) {
	// Core 1 reads a block coherently; later core 0 registers it and
	// accesses it NC: the directory entry must be deallocated (§III-E).
	h := tiny(RaCCD)
	h.Access(1, 0x8000, true, 9)
	h.InvalidateNC(1) // no-op for coherent lines, but clears NCRT
	pa, _ := h.MMU(1).Translate(0x8000)
	b := mem.BlockOf(pa)
	if _, ok := h.Dir().Peek(b); !ok {
		t.Fatal("precondition: coherent block must have dir entry")
	}
	h.RegisterRegion(0, mem.Range{Start: 0x8000, Size: 64})
	h.Access(0, 0x8000, false, 0)
	if _, ok := h.Dir().Peek(b); ok {
		t.Fatal("directory entry survived coherent→NC transition")
	}
	ln, ok := h.L1(0).Peek(b)
	if !ok || !ln.NC || ln.Val != 9 {
		t.Fatalf("NC reader got %+v, want NC val 9", ln)
	}
	mustOK(t, h)
}

func TestPTPrivatePagesNonCoherent(t *testing.T) {
	h := tiny(PT)
	h.Access(0, 0x1000, true, 4)
	if h.Stats.NCFills != 1 {
		t.Fatalf("private first touch not NC: %+v", h.Stats)
	}
	// Same core, same page: still NC.
	h.Access(0, 0x1040, false, 0)
	if h.Stats.NCFills != 2 {
		t.Fatal("private page access by owner not NC")
	}
	mustOK(t, h)
}

func TestPTFlipFlushesPreviousOwner(t *testing.T) {
	h := tiny(PT)
	h.Access(0, 0x1000, true, 4)
	h.Access(1, 0x1040, false, 0) // same page, different core: flip
	if h.Stats.PTFlips != 1 {
		t.Fatalf("PTFlips = %d, want 1", h.Stats.PTFlips)
	}
	pa, _ := h.MMU(0).Translate(0x1000)
	if _, ok := h.L1(0).Peek(mem.BlockOf(pa)); ok {
		t.Fatal("previous owner's block survived the flip flush")
	}
	// Dirty data must have been preserved.
	h.DrainAll()
	if got := h.VirtValue(0x1000); got != 4 {
		t.Fatalf("flip lost dirty data: %d", got)
	}
}

func TestPTSharedPageStaysCoherent(t *testing.T) {
	h := tiny(PT)
	h.Access(0, 0x1000, false, 0)
	h.Access(1, 0x1000, false, 0) // flip to shared
	nc := h.Stats.NCFills
	h.Access(0, 0x1080, false, 0) // same page again, post flip
	if h.Stats.NCFills != nc {
		t.Fatal("access to shared page counted as NC")
	}
	mustOK(t, h)
}

func TestWriteThroughKeepsLinesClean(t *testing.T) {
	h := tiny(FullCoh)
	h.Params.WriteThrough = true
	h.Access(0, 0x1000, true, 3)
	pa, _ := h.MMU(0).Translate(0x1000)
	b := mem.BlockOf(pa)
	ln, ok := h.L1(0).Peek(b)
	if !ok || ln.Dirty {
		t.Fatalf("write-through line dirty: %+v", ln)
	}
	home := h.Dir().BankOf(b)
	lline, ok := h.LLCBank(home).Peek(b)
	if !ok || lline.Val != 3 {
		t.Fatal("write-through did not update LLC")
	}
	h.DrainAll()
	if h.VirtValue(0x1000) != 3 {
		t.Fatal("write-through value lost")
	}
}

func TestNonCoherentFractionFig2Accounting(t *testing.T) {
	h := tiny(RaCCD)
	h.RegisterRegion(0, mem.Range{Start: 0x8000, Size: 2 * 64})
	h.Access(0, 0x8000, false, 0) // NC
	h.Access(0, 0x8040, false, 0) // NC
	h.Access(0, 0x100, false, 0)  // coherent
	if got := h.NonCoherentFraction(); got < 0.66 || got > 0.67 {
		t.Fatalf("NC fraction = %v, want 2/3", got)
	}
	// A block ever touched coherently counts coherent even if later NC.
	h.InvalidateNC(0)
	h.RegisterRegion(1, mem.Range{Start: 0x100, Size: 64})
	h.Access(1, 0x100, false, 0) // NC access to a block seen coherent
	if got := h.NonCoherentFraction(); got < 0.66 || got > 0.67 {
		t.Fatalf("NC fraction after mixed access = %v, want 2/3", got)
	}
}

func TestLLCEvictionRecallsL1(t *testing.T) {
	h := tiny(FullCoh)
	// LLC bank 0: 8 sets × 2 ways. Blocks with block%4==0 whose
	// (block/4)%8 set index collides: choose set 0 → blocks 0, 128, 256
	// (units of blocks), same as directory — directory also collides, so
	// to isolate LLC eviction give the directory more room than the LLC.
	h2p := h.Params
	h2p.DirSetsPerBank = 8
	h2p.LLCSetsPerBank = 8
	// Defaults already equal; rely on whichever evicts first and just
	// verify inclusion holds throughout.
	for i := 0; i < 6; i++ {
		h.Access(0, mem.Addr(i*128*64), true, uint64(i+1))
		mustOK(t, h)
	}
	h.DrainAll()
	for i := 0; i < 6; i++ {
		if got := h.VirtValue(mem.Addr(i * 128 * 64)); got != uint64(i+1) {
			t.Fatalf("value %d lost across LLC/dir evictions: got %d", i+1, got)
		}
	}
}

func TestNCRTOverflowFallsBackCoherent(t *testing.T) {
	h := tiny(RaCCD)
	// Fragment the page table so each page is its own interval, and
	// register more pages than NCRT entries (8).
	h2 := New(RaCCD, Params{
		Cores: 4, L1Sets: 4, L1Ways: 2, LLCSetsPerBank: 8, LLCWays: 2,
		DirSetsPerBank: 8, DirWays: 2, DirMinSetsPerBank: 1,
		NCRTEntries: 2, NCRTLookupCycles: 1, TLBEntries: 16,
		L1HitCycles: 2, LLCCycles: 15, MemCycles: 160,
		Contiguity: 0.0, Seed: 5,
	})
	_ = h
	h2.RegisterRegion(0, mem.Range{Start: 0, Size: 8 * mem.PageSize})
	if h2.NCRT(0).Stats.Overflows == 0 {
		t.Skip("allocator happened to be contiguous; nothing to test")
	}
	// Accesses to uncovered pages must be coherent and still correct.
	h2.Access(0, 7*mem.PageSize, true, 13)
	h2.DrainAll()
	if got := h2.VirtValue(7 * mem.PageSize); got != 13 {
		t.Fatalf("overflowed-region value = %d, want 13", got)
	}
}

func TestModeString(t *testing.T) {
	if FullCoh.String() != "FullCoh" || PT.String() != "PT" || RaCCD.String() != "RaCCD" {
		t.Fatal("Mode strings wrong")
	}
}

func TestWithDirRatio(t *testing.T) {
	p := DefaultParams()
	q := p.WithDirRatio(256)
	if q.DirSetsPerBank != 1 {
		t.Fatalf("1:256 sets/bank = %d, want 1", q.DirSetsPerBank)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid ratio did not panic")
			}
		}()
		p.WithDirRatio(512)
	}()
}

// Property: under an arbitrary storm of accesses from all cores, the
// protocol invariants hold and — because this simulator issues accesses
// sequentially — the drained memory equals the last value written per block.
//
// For RaCCD the storm respects the task memory model: each step is a
// bracketed mini-task (register → accesses → invalidate), so no two cores
// ever hold the same block non-coherently with a writer — the data-race-free
// guarantee the paper's programming model provides.
func TestQuickProtocolStorm(t *testing.T) {
	storm := func(mode Mode) func(ops []uint16) bool {
		return func(ops []uint16) bool {
			h := tiny(mode)
			last := map[mem.Addr]uint64{}
			val := uint64(1)
			access := func(c int, addr mem.Addr, write bool) {
				if write {
					h.Access(c, addr, true, val)
					last[mem.AlignDown(addr, 64)] = val
					val++
				} else {
					h.Access(c, addr, false, 0)
				}
			}
			for _, op := range ops {
				c := int(op & 3)
				addr := mem.Addr(op>>2&0x3f) * 64 // 64 distinct blocks
				write := op&0x8000 != 0
				if mode == RaCCD && op&0x4000 != 0 {
					// A mini-task: register a region, access inside
					// and outside it, then recover. Fully bracketed,
					// so concurrent NC sharing never occurs.
					h.RegisterRegion(c, mem.Range{Start: addr, Size: 256})
					access(c, addr, write)
					access(c, addr+64, true)
					access(c, addr+4096, false) // outside: coherent
					h.InvalidateNC(c)
				} else {
					access(c, addr, write)
				}
			}
			if mode == RaCCD {
				for c := 0; c < 4; c++ {
					h.InvalidateNC(c)
				}
			}
			if err := h.CheckInvariants(); err != nil {
				t.Logf("invariant: %v", err)
				return false
			}
			h.DrainAll()
			for a, v := range last {
				if got := h.VirtValue(a); got != v {
					t.Logf("addr %#x: got %d want %d", uint64(a), got, v)
					return false
				}
			}
			return true
		}
	}
	for _, mode := range []Mode{FullCoh, PT, RaCCD} {
		if err := quick.Check(storm(mode), &quick.Config{MaxCount: 60}); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

// Property: RaCCD with everything registered never touches the directory
// for data accesses after the first coherent-to-NC transitions settle.
func TestQuickRaCCDDirQuiescent(t *testing.T) {
	f := func(ops []uint8) bool {
		h := tiny(RaCCD)
		h.RegisterRegion(0, mem.Range{Start: 0, Size: 64 * 64})
		for range ops {
			h.Access(0, mem.Addr(len(ops)%64)*64, true, 1)
		}
		return h.Dir().Stats.Accesses == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
