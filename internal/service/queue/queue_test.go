package queue

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func TestQueueSubmitGetOrder(t *testing.T) {
	q := New(4)
	var ids []string
	for i := 0; i < 3; i++ {
		j := NewJob(q.NewID(), "run", "", 1)
		if err := q.Submit(j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID())
	}
	if ids[0] != "j000001" || ids[2] != "j000003" {
		t.Fatalf("ids = %v, want dense j%%06d", ids)
	}
	if q.Depth() != 3 {
		t.Fatalf("depth = %d, want 3", q.Depth())
	}
	for i, j := range q.Jobs() {
		if j.ID() != ids[i] {
			t.Fatalf("Jobs()[%d] = %s, want submission order %v", i, j.ID(), ids)
		}
	}
	j, ok := q.Get(ids[1])
	if !ok || j.ID() != ids[1] {
		t.Fatalf("Get(%s) = %v, %v", ids[1], j, ok)
	}
	if _, ok := q.Get("j999999"); ok {
		t.Fatal("Get of unknown id succeeded")
	}
}

func TestQueueFullAndClosed(t *testing.T) {
	q := New(1)
	if err := q.Submit(NewJob(q.NewID(), "run", "", 1)); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(NewJob(q.NewID(), "run", "", 1)); err != ErrFull {
		t.Fatalf("overflow submit err = %v, want ErrFull", err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	if err := q.Submit(NewJob(q.NewID(), "run", "", 1)); err != ErrClosed {
		t.Fatalf("post-close submit err = %v, want ErrClosed", err)
	}
	if err := q.Close(); err == nil {
		t.Fatal("second Close did not error")
	}
	// The backlog accepted before Close still drains through C.
	j, ok := <-q.C()
	if !ok || j == nil {
		t.Fatal("queued job lost on close")
	}
	if _, ok := <-q.C(); ok {
		t.Fatal("channel not closed after backlog drained")
	}
}

func TestJobLifecycleEvents(t *testing.T) {
	j := NewJob("j000001", "sweep", "", 3)
	if st := j.Status(); st.State != StateQueued || st.RunsTotal != 3 || st.Kind != "sweep" {
		t.Fatalf("fresh job status = %+v", st)
	}
	j.SetState(StateRunning, "")
	j.Progress("line one")
	j.Progress("line two")
	j.Finish("csv\n", nil)

	st := j.Status()
	if st.State != StateDone || st.RunsDone != 2 || st.ResultURL == "" {
		t.Fatalf("done status = %+v", st)
	}
	if st.Started.IsZero() || st.Finished.IsZero() {
		t.Fatal("timestamps not stamped")
	}
	csv, state, errMsg := j.Result()
	if csv != "csv\n" || state != StateDone || errMsg != "" {
		t.Fatalf("Result() = %q, %v, %q", csv, state, errMsg)
	}

	evs, _, finished := j.EventsSince(0)
	if !finished {
		t.Fatal("job not reported finished")
	}
	// queued, running, progress x2, done-status, done
	types := make([]string, len(evs))
	for i, e := range evs {
		if e.ID != i {
			t.Fatalf("event %d has id %d, want dense ids", i, e.ID)
		}
		types[i] = e.Type
	}
	want := []string{"status", "status", "progress", "progress", "status", "done"}
	if len(types) != len(want) {
		t.Fatalf("event types = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("event types = %v, want %v", types, want)
		}
	}
	var p struct {
		Index int    `json:"index"`
		Line  string `json:"line"`
	}
	if err := json.Unmarshal(evs[3].Data, &p); err != nil || p.Index != 1 || p.Line != "line two" {
		t.Fatalf("progress payload = %+v (%v)", p, err)
	}

	tail, _, _ := j.EventsSince(4)
	if len(tail) != 2 || tail[0].ID != 4 {
		t.Fatalf("EventsSince(4) = %d events starting at %d", len(tail), tail[0].ID)
	}
}

func TestJobFinishOutcomes(t *testing.T) {
	fail := NewJob("j1", "run", "", 1)
	fail.Finish("", errors.New("boom"))
	if _, state, msg := fail.Result(); state != StateFailed || msg != "boom" {
		t.Fatalf("failed job = %v, %q", state, msg)
	}

	cancel := NewJob("j2", "run", "", 1)
	cancel.Finish("", context.Canceled)
	if _, state, _ := cancel.Result(); state != StateCanceled {
		t.Fatalf("canceled job = %v", state)
	}

	deadline := NewJob("j3", "run", "", 1)
	deadline.Finish("", context.DeadlineExceeded)
	if _, state, _ := deadline.Result(); state != StateCanceled {
		t.Fatalf("deadline job = %v", state)
	}
	for _, s := range []State{StateDone, StateFailed, StateCanceled} {
		if !s.Terminal() {
			t.Fatalf("%v not terminal", s)
		}
	}
	for _, s := range []State{StateQueued, StateRunning} {
		if s.Terminal() {
			t.Fatalf("%v terminal", s)
		}
	}
}

func TestEventNotifyBroadcast(t *testing.T) {
	j := NewJob("j1", "run", "", 1)
	_, more, _ := j.EventsSince(0)
	done := make(chan struct{})
	go func() {
		<-more
		close(done)
	}()
	j.Progress("wake")
	<-done
	evs, _, _ := j.EventsSince(0)
	if len(evs) != 2 {
		t.Fatalf("%d events after wake, want 2", len(evs))
	}
}
