package sim

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"raccd/internal/coherence"
	"raccd/internal/cpu"
	"raccd/internal/noc"
	"raccd/internal/rts"
)

// fingerprintVersion is bumped whenever the canonical form below changes
// meaning, so stale cached results can never be mistaken for current ones.
//
// v2: the machine geometry became parametric — meshw/meshh joined the
// canonical form (and cores/cache/directory fields became genuinely
// variable through raccd.Machine). Every v1 key is a clean miss under v2.
//
// v3: core timing became parametric — core/pfdeg/pfdist joined the
// canonical form. A core model or prefetcher changes cycles and (through
// injected prefetch traffic) every traffic metric, so the knobs must key
// the cache; and because the version is part of the prefix, every v2 key
// is a clean miss under v3.
const fingerprintVersion = 3

// fingerprintFields is the canonical coverage table: every
// result-affecting field of Config — with Params flattened into it — and
// the key that carries it in the canonical form. The raccdvet
// fingerprint analyzer cross-checks this table in both directions
// (struct ↔ table ↔ the `"key="` literals Fingerprint renders), so a new
// Config or coherence.Params field fails `raccdvet ./...` with a
// file:line diagnostic until it is either keyed here and rendered below,
// or listed in fingerprintExcluded with the reason it cannot affect
// results.
var fingerprintFields = map[string]string{
	"System":           "system",
	"DirRatio":         "dirratio",
	"ADR":              "adr",
	"Scheduler":        "sched",
	"SMTWays":          "smt",
	"ComputePerAccess": "compute",
	"Core":             "core",
	"PrefetchDegree":   "pfdeg",
	"PrefetchDistance": "pfdist",
	// coherence.Params, flattened:
	"Cores":             "cores",
	"MeshW":             "meshw",
	"MeshH":             "meshh",
	"L1Sets":            "l1sets",
	"L1Ways":            "l1ways",
	"LLCSetsPerBank":    "llcsets",
	"LLCWays":           "llcways",
	"DirSetsPerBank":    "dirsets",
	"DirWays":           "dirways",
	"DirMinSetsPerBank": "dirminsets",
	"NCRTEntries":       "ncrt",
	"NCRTLookupCycles":  "ncrtlat",
	"TLBEntries":        "tlb",
	"L1HitCycles":       "l1hit",
	"LLCCycles":         "llccyc",
	"MemCycles":         "memcyc",
	"WriteThrough":      "wt",
	"Contiguity":        "contig",
	"Seed":              "seed",
	"NoCTopology":       "noc",
}

// fingerprintExcluded lists the Config fields deliberately NOT part of
// the fingerprint, each with the contract that makes the exclusion
// sound. Removing a row without removing the field (or vice versa) fails
// raccdvet.
var fingerprintExcluded = map[string]string{
	"Validate": "toggles golden checking, not metrics: a validated and an unvalidated run return the same Result",
	"Engine":   "host execution strategy; metric-identical by contract (TestEngineEquivalence), so engines share cache entries",
	"Shards":   "host parallelism knob of the epoch engine; same equivalence contract as Engine",
}

// Fingerprint returns the canonical identity of the simulated machine this
// configuration describes: two Configs produce the same fingerprint exactly
// when they drive identical simulations. It is the configuration half of
// the resultstore cache key (the other half is the workload identity, see
// internal/workloads.Identity).
//
// Properties:
//
//   - Canonical: zero-value fields are normalized to what Run actually
//     uses before rendering (Params zero → DefaultParams, DirRatio 0 → 1,
//     Scheduler "" → fifo, SMTWays 0 → 1, ComputePerAccess 0 → the
//     runtime default, NoCTopology "" → mesh, mesh dims 0×0 → the
//     canonical noc.DefaultMeshDims factorization, Core "" → simple,
//     PrefetchDistance normalized against PrefetchDegree the way cpu.New
//     resolves it), so a default-by-omission Config and an
//     explicit-default Config fingerprint identically.
//   - Field-order-independent: fields are emitted as sorted key=value
//     pairs, so the rendering never depends on struct layout.
//   - Complete over result-affecting fields: every Config field and every
//     Params field except Validate, Engine and Shards is covered. Validate
//     toggles golden checking, not metrics — a validated and an
//     unvalidated run of the same machine return the same Result, so they
//     intentionally share a fingerprint. Engine and Shards select the host
//     execution strategy, which is metric-identical by contract (the
//     equivalence property tests pin it), so a result computed by one
//     engine is served from cache to every other — deliberately excluded.
//     TestFingerprintCoversAllFields pins the field counts so a new field
//     cannot be forgotten silently.
func (c Config) Fingerprint() string {
	if c.Params.Cores == 0 {
		c.Params = coherence.DefaultParams()
	}
	if c.DirRatio == 0 {
		c.DirRatio = 1
	}
	if c.Scheduler == "" {
		c.Scheduler = "fifo"
	}
	if c.SMTWays == 0 {
		c.SMTWays = 1
	}
	if c.ComputePerAccess == 0 {
		c.ComputePerAccess = rts.DefaultComputePerAccess
	}
	if c.Core == "" {
		c.Core = "simple"
	}
	if c.PrefetchDegree == 0 {
		// No prefetcher: the distance is inert, normalize it away.
		c.PrefetchDistance = 0
	} else if c.PrefetchDistance == 0 {
		c.PrefetchDistance = cpu.DefaultPrefetchDistance
	}
	p := c.Params
	if p.NoCTopology == "" {
		p.NoCTopology = "mesh"
	}
	if p.Cores > 0 && p.Cores&(p.Cores-1) == 0 {
		if p.MeshW == 0 && p.MeshH == 0 || p.NoCTopology == "ring" {
			// Unset dims take the canonical factorization; a ring ignores
			// mesh dims entirely, so they are normalized away — otherwise
			// identical ring simulations would get distinct cache keys.
			p.MeshW, p.MeshH = noc.DefaultMeshDims(p.Cores)
		}
	}
	pairs := []string{
		"system=" + c.System.String(),
		"dirratio=" + strconv.Itoa(c.DirRatio),
		"adr=" + strconv.FormatBool(c.ADR),
		"sched=" + c.Scheduler,
		"smt=" + strconv.Itoa(c.SMTWays),
		"compute=" + strconv.FormatUint(c.ComputePerAccess, 10),
		"core=" + c.Core,
		"pfdeg=" + strconv.Itoa(c.PrefetchDegree),
		"pfdist=" + strconv.Itoa(c.PrefetchDistance),
		"cores=" + strconv.Itoa(p.Cores),
		"meshw=" + strconv.Itoa(p.MeshW),
		"meshh=" + strconv.Itoa(p.MeshH),
		"l1sets=" + strconv.Itoa(p.L1Sets),
		"l1ways=" + strconv.Itoa(p.L1Ways),
		"llcsets=" + strconv.Itoa(p.LLCSetsPerBank),
		"llcways=" + strconv.Itoa(p.LLCWays),
		"dirsets=" + strconv.Itoa(p.DirSetsPerBank),
		"dirways=" + strconv.Itoa(p.DirWays),
		"dirminsets=" + strconv.Itoa(p.DirMinSetsPerBank),
		"ncrt=" + strconv.Itoa(p.NCRTEntries),
		"ncrtlat=" + strconv.FormatUint(p.NCRTLookupCycles, 10),
		"tlb=" + strconv.Itoa(p.TLBEntries),
		"l1hit=" + strconv.FormatUint(p.L1HitCycles, 10),
		"llccyc=" + strconv.FormatUint(p.LLCCycles, 10),
		"memcyc=" + strconv.FormatUint(p.MemCycles, 10),
		"wt=" + strconv.FormatBool(p.WriteThrough),
		"contig=" + strconv.FormatFloat(p.Contiguity, 'g', -1, 64),
		"seed=" + strconv.FormatInt(p.Seed, 10),
		"noc=" + p.NoCTopology,
	}
	sort.Strings(pairs)
	return fmt.Sprintf("cfg/v%d %s", fingerprintVersion, strings.Join(pairs, " "))
}
