// Package service is the simulation-as-a-service layer behind cmd/raccdd:
// an HTTP API that queues single runs and whole evaluation sweeps,
// deduplicates identical simulations through a shared content-addressed
// result store, streams per-run progress over SSE, and serves results as
// exactly the CSV internal/report produces — a cached or served byte is
// pinned identical to a local simulation.
//
// API (see docs/SERVICE.md for the full spec):
//
//	GET  /healthz                  liveness + version
//	GET  /v1/stats                 queue depth, cache hit rate, sims/sec
//	POST /v1/runs                  submit one simulation        → job
//	POST /v1/sweeps                submit an evaluation sweep   → job
//	GET  /v1/jobs                  list jobs
//	GET  /v1/jobs/{id}             job status
//	GET  /v1/jobs/{id}/events      SSE progress stream (?after=<id> resumes)
//	GET  /v1/jobs/{id}/result      result CSV (once done)
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"raccd/internal/coherence"
	"raccd/internal/machine"
	"raccd/internal/report"
	"raccd/internal/resultstore"
	"raccd/internal/rts"
	"raccd/internal/sim"
	"raccd/internal/workloads"
)

// Version is reported by /healthz.
const Version = "1"

// Options configures a Server.
type Options struct {
	// Store is the content-addressed result cache; required. The same
	// directory may back cmd/sweep -cache, so offline sweeps and served
	// runs share results.
	Store *resultstore.Store
	// SimJobs is the per-job simulation parallelism (runner pool width);
	// 0 selects one worker per CPU.
	SimJobs int
	// JobWorkers is how many jobs execute concurrently (default 2).
	JobWorkers int
	// QueueDepth bounds the number of jobs waiting to start (default 64);
	// submissions beyond it are rejected with 503.
	QueueDepth int
	// MaxSweepRuns rejects sweeps that expand to more simulations than
	// this (default 100000).
	MaxSweepRuns int
	// Engine and Shards select the default per-simulation execution
	// engine for requests that do not name one: "" or "seq" runs each
	// simulation on one goroutine, "epoch" spreads it across Shards
	// workers (0 → one per host CPU). Engines are metric-identical and
	// excluded from the result-cache key, so this knob never changes
	// what a client receives — only how the server spends its CPUs.
	Engine string
	Shards int
}

// Server implements the HTTP API. Create with New, serve s.Handler(),
// stop with Shutdown.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	start time.Time

	// runCtx cancels in-flight simulations on forced shutdown.
	runCtx    context.Context
	cancelRun context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*job
	order   []string
	nextID  int
	queue   chan *job
	closing bool

	// simMu guards sims: per-engine counters of simulations this server
	// actually executed (cache hits are not sims) and the wall-clock
	// time they took, fed by run jobs and sweep OnSimulated hooks.
	simMu sync.Mutex
	sims  map[string]*engineSims

	workers sync.WaitGroup
}

// engineSims accumulates one engine's executed-simulation tally.
type engineSims struct {
	n       uint64
	seconds float64
}

// noteSim records one executed simulation under its engine name.
func (s *Server) noteSim(engine string, elapsed time.Duration) {
	if engine == "" {
		engine = "seq"
	}
	s.simMu.Lock()
	es := s.sims[engine]
	if es == nil {
		es = &engineSims{}
		s.sims[engine] = es
	}
	es.n++
	es.seconds += elapsed.Seconds()
	s.simMu.Unlock()
}

// New validates opts, starts the job workers and returns a ready server.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, errors.New("service: Options.Store is required")
	}
	if opts.JobWorkers <= 0 {
		opts.JobWorkers = 2
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.MaxSweepRuns <= 0 {
		opts.MaxSweepRuns = 100000
	}
	if _, err := rts.ParseEngine(opts.Engine, opts.Shards); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s := &Server{
		opts:  opts,
		mux:   http.NewServeMux(),
		start: time.Now(),
		jobs:  make(map[string]*job),
		queue: make(chan *job, opts.QueueDepth),
		sims:  make(map[string]*engineSims),
	}
	s.runCtx, s.cancelRun = context.WithCancel(context.Background())

	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/runs", s.handleSubmitRun)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmitSweep)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)

	s.workers.Add(opts.JobWorkers)
	for i := 0; i < opts.JobWorkers; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the API handler (mount it on any http.Server).
func (s *Server) Handler() http.Handler { return s.mux }

// worker executes queued jobs until the queue closes.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		if s.runCtx.Err() != nil {
			j.setState(StateCanceled, "")
			continue
		}
		j.setState(StateRunning, "")
		csv, err := s.executeJob(j)
		switch {
		case err == nil:
			j.mu.Lock()
			j.csv = csv
			j.mu.Unlock()
			j.setState(StateDone, "")
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			j.setState(StateCanceled, "")
		default:
			j.setState(StateFailed, err.Error())
		}
	}
}

// executeJob runs a job's body, converting a panic into a job failure so
// one bad request can never take the daemon (and every queued job) down.
func (s *Server) executeJob(j *job) (csv string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("job panicked: %v", r)
		}
	}()
	return j.execute(j)
}

// Shutdown drains the daemon: new submissions are rejected immediately,
// and the workers get until ctx's deadline to finish every accepted job
// (in-flight and queued). When the deadline passes, remaining jobs are
// cancelled — sweeps stop at the next run boundary, a single simulation
// already in flight aborts at its next task dispatch (sim.RunContext),
// and jobs that have not started are marked canceled. It returns nil on
// a clean drain, or ctx's error when the deadline forced cancellation.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return errors.New("service: already shut down")
	}
	s.closing = true
	close(s.queue) // workers drain what is queued, then exit
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.cancelRun() // abort in-flight simulations
		<-done        // workers observe cancellation promptly
	}
	s.cancelRun()
	return err
}

// --- submission -----------------------------------------------------------

// RunRequest is the body of POST /v1/runs: one workload under one
// configuration. Workload accepts the same namespaces as the CLIs — a
// bundled benchmark name, "synth:<spec>", or "trace:<path>" resolved on
// the server's filesystem.
type RunRequest struct {
	Workload string  `json:"workload"`
	Scale    float64 `json:"scale,omitempty"` // default 1.0

	System string `json:"system"` // FullCoh, PT, PT-RO, RaCCD
	// Machine selects the simulated chip geometry: a preset name
	// ("paper16", "m32", "m64") or a power-of-two core count ("32").
	// Empty selects the paper's 16-core machine.
	Machine      string  `json:"machine,omitempty"`
	DirRatio     int     `json:"dir_ratio,omitempty"` // default 1
	ADR          bool    `json:"adr,omitempty"`
	Scheduler    string  `json:"scheduler,omitempty"`
	SMTWays      int     `json:"smt_ways,omitempty"`
	NCRTLatency  uint64  `json:"ncrt_latency,omitempty"`
	NCRTEntries  int     `json:"ncrt_entries,omitempty"`
	WriteThrough bool    `json:"write_through,omitempty"`
	Contiguity   float64 `json:"contiguity,omitempty"`
	Validate     *bool   `json:"validate,omitempty"` // default true
	// Engine/Shards select how the server executes this simulation
	// ("seq" or "epoch"; shards 0 → one worker per host CPU). Empty
	// uses the server's default. Metric-identical: results and cache
	// keys are unaffected.
	Engine string `json:"engine,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

// config materializes the request as a checked sim.Config. An empty
// engine selection falls back to the server default def.
func (r RunRequest) config(def Options) (sim.Config, error) {
	mode, err := parseSystem(r.System)
	if err != nil {
		return sim.Config{}, err
	}
	mach, err := machine.Parse(r.Machine)
	if err != nil {
		return sim.Config{}, err
	}
	ratio := r.DirRatio
	if ratio == 0 {
		ratio = 1
	}
	cfg := sim.DefaultConfig(mode, ratio)
	cfg.Params = mach.Params()
	cfg.ADR = r.ADR
	cfg.Scheduler = r.Scheduler
	cfg.SMTWays = r.SMTWays
	if r.NCRTLatency != 0 {
		cfg.Params.NCRTLookupCycles = r.NCRTLatency
	}
	if r.NCRTEntries != 0 {
		cfg.Params.NCRTEntries = r.NCRTEntries
	}
	cfg.Params.WriteThrough = r.WriteThrough
	if r.Contiguity != 0 {
		if r.Contiguity < 0 || r.Contiguity > 1 {
			return sim.Config{}, fmt.Errorf("contiguity %g out of range [0, 1]", r.Contiguity)
		}
		cfg.Params.Contiguity = r.Contiguity
	}
	cfg.Validate = r.Validate == nil || *r.Validate
	cfg.Engine = r.Engine
	cfg.Shards = r.Shards
	if cfg.Engine == "" && cfg.Shards == 0 {
		cfg.Engine, cfg.Shards = def.Engine, def.Shards
	}
	return cfg, cfg.Check()
}

// SweepRequest is the body of POST /v1/sweeps: a full evaluation matrix.
// Zero-value fields select the paper's defaults.
type SweepRequest struct {
	Workloads []string `json:"workloads,omitempty"` // default: the paper's nine
	Systems   []string `json:"systems,omitempty"`   // default: FullCoh, PT, RaCCD
	Ratios    []int    `json:"ratios,omitempty"`    // default: 1..256
	ADR       bool     `json:"adr,omitempty"`
	// Machine selects the chip geometry for every run of the sweep
	// ("paper16" when empty; see RunRequest.Machine).
	Machine  string  `json:"machine,omitempty"`
	Scale    float64 `json:"scale,omitempty"`    // default 1.0
	Validate *bool   `json:"validate,omitempty"` // default true
	// Engine/Shards select how the server executes each simulation of
	// the sweep (see RunRequest.Engine). Empty uses the server default.
	Engine string `json:"engine,omitempty"`
	Shards int    `json:"shards,omitempty"`
}

// matrix materializes the request as a report.Matrix wired to the
// server's cache and parallelism.
func (s *Server) matrix(r SweepRequest) (report.Matrix, error) {
	m := report.DefaultMatrix()
	m.Jobs = s.opts.SimJobs
	m.Cache = s.opts.Store
	m.ADR = r.ADR
	mach, err := machine.Parse(r.Machine)
	if err != nil {
		return report.Matrix{}, err
	}
	m.Machine = mach
	if len(r.Workloads) > 0 {
		m.Workloads = r.Workloads
	}
	if len(r.Systems) > 0 {
		m.Systems = m.Systems[:0]
		for _, name := range r.Systems {
			mode, err := parseSystem(name)
			if err != nil {
				return report.Matrix{}, err
			}
			m.Systems = append(m.Systems, mode)
		}
	}
	if len(r.Ratios) > 0 {
		m.Ratios = r.Ratios
	}
	if r.Scale != 0 {
		m.Scale = r.Scale
	}
	m.Validate = r.Validate == nil || *r.Validate
	m.Engine = r.Engine
	m.Shards = r.Shards
	if m.Engine == "" && m.Shards == 0 {
		m.Engine, m.Shards = s.opts.Engine, s.opts.Shards
	}
	// Validate the matrix up front: every workload must resolve and every
	// (system, ratio) cell must describe a runnable machine.
	for _, name := range m.Workloads {
		if _, err := workloads.Identity(name, m.Scale); err != nil {
			return report.Matrix{}, err
		}
	}
	for _, sys := range m.Systems {
		for _, ratio := range m.Ratios {
			cfg := sim.DefaultConfig(sys, ratio)
			cfg.Params = mach.Params()
			cfg.Engine = m.Engine
			cfg.Shards = m.Shards
			if err := cfg.Check(); err != nil {
				return report.Matrix{}, err
			}
		}
	}
	return m, nil
}

// submit registers and enqueues a job, or reports why it cannot.
func (s *Server) submit(j *job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return errServiceClosing
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		return nil
	default:
		return errQueueFull
	}
}

var (
	errQueueFull      = errors.New("job queue full")
	errServiceClosing = errors.New("service shutting down")
)

// newJobID allocates a monotonically increasing job id.
func (s *Server) newJobID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("j%06d", s.nextID)
}

func (s *Server) handleSubmitRun(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	cfg, err := req.config(s.opts)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	scale := req.Scale
	if scale == 0 {
		scale = 1.0
	}
	identity, err := workloads.Identity(req.Workload, scale)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	key := resultstore.KeyOf(cfg.Fingerprint(), identity)

	j := newJob(s.newJobID(), "run", 1)
	workload, store, runCtx := req.Workload, s.opts.Store, s.runCtx
	j.execute = func(j *job) (string, error) {
		res, cached, err := store.GetOrCompute(key, func() (sim.Result, error) {
			// Forced shutdown between dequeue and compute: don't start a
			// simulation nobody will wait for.
			if err := runCtx.Err(); err != nil {
				return sim.Result{}, err
			}
			w, err := workloads.Get(workload, scale)
			if err != nil {
				return sim.Result{}, err
			}
			// RunContext: a forced shutdown aborts even a single
			// in-flight simulation at its next task dispatch.
			start := time.Now()
			res, err := sim.RunContext(runCtx, w, cfg)
			if err == nil {
				s.noteSim(cfg.Engine, time.Since(start))
			}
			return res, err
		})
		if err != nil {
			return "", err
		}
		tag := ""
		if cached {
			tag = " (cached)"
		}
		j.progress(fmt.Sprintf("%-9s %-8v 1:%-3d cycles=%d%s", res.Workload, res.System, res.DirRatio, res.Cycles, tag))
		return report.NewSet([]sim.Result{res}).CSV(), nil
	}
	s.enqueueAndRespond(w, j)
}

func (s *Server) handleSubmitSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	m, err := s.matrix(req)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	runs := m.NumRuns()
	if runs == 0 {
		httpError(w, http.StatusBadRequest, errors.New("sweep expands to zero runs"))
		return
	}
	if runs > s.opts.MaxSweepRuns {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf("sweep expands to %d runs, above the server's limit of %d", runs, s.opts.MaxSweepRuns))
		return
	}

	j := newJob(s.newJobID(), "sweep", runs)
	runCtx := s.runCtx
	j.execute = func(j *job) (string, error) {
		m.Progress = func(line string) { j.progress(line) }
		m.OnSimulated = s.noteSim
		set, err := m.RunContext(runCtx)
		if err != nil {
			return "", err
		}
		return set.CSV(), nil
	}
	s.enqueueAndRespond(w, j)
}

// enqueueAndRespond submits j and writes the 202/503 response.
func (s *Server) enqueueAndRespond(w http.ResponseWriter, j *job) {
	if err := s.submit(j); err != nil {
		httpError(w, http.StatusServiceUnavailable, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.status())
}

// --- queries --------------------------------------------------------------

func (s *Server) lookup(r *http.Request) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[r.PathValue("id")]
	return j, ok
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	csv, state, errMsg := j.result()
	switch state {
	case StateDone:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, csv)
	case StateFailed:
		httpError(w, http.StatusInternalServerError, errors.New(errMsg))
	case StateCanceled:
		httpError(w, http.StatusGone, errors.New("job was canceled"))
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusConflict, fmt.Errorf("job is %s; result not ready", state))
	}
}

// handleEvents streams the job's event log as SSE: history first, then
// live appends, ending after the terminal event. ?after=<id> resumes past
// already-seen events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	from := 0
	if after := r.URL.Query().Get("after"); after != "" {
		n, err := strconv.Atoi(after)
		if err != nil || n < -1 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad after=%q", after))
			return
		}
		from = n + 1
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	for {
		evs, more, finished := j.eventsSince(from)
		for _, e := range evs {
			fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.ID, e.Type, e.Data)
		}
		from += len(evs)
		fl.Flush()
		if finished && len(evs) == 0 {
			return
		}
		if finished {
			// Emit whatever arrived with the terminal transition, then
			// re-check for a clean exit.
			continue
		}
		select {
		case <-more:
		case <-r.Context().Done():
			return
		}
	}
}

// --- health and stats -----------------------------------------------------

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":      true,
		"version": Version,
		"uptime":  time.Since(s.start).Seconds(),
	})
}

// StatsSnapshot is the JSON shape of GET /v1/stats: expvar-style counters
// for dashboards and the CI smoke test.
type StatsSnapshot struct {
	UptimeSeconds float64        `json:"uptime_seconds"`
	QueueDepth    int            `json:"queue_depth"`
	Jobs          map[string]int `json:"jobs"`
	RunsCompleted uint64         `json:"runs_completed"`
	SimsRun       uint64         `json:"sims_run"`
	SimsPerSec    float64        `json:"sims_per_sec"`
	// Engine and Shards echo the server's default execution engine
	// (Options.Engine/Shards; "seq" when unset). EngineSims breaks the
	// simulations this server executed down by the engine that ran
	// them, with per-engine throughput over the engine's own busy time
	// — on a multi-core host this is what shows whether epoch sharding
	// is paying off.
	Engine       string                `json:"engine"`
	Shards       int                   `json:"shards,omitempty"`
	EngineSims   map[string]EngineSims `json:"engine_sims,omitempty"`
	CacheHits    uint64                `json:"cache_hits"`
	CacheMisses  uint64                `json:"cache_misses"`
	CacheHitRate float64               `json:"cache_hit_rate"`
	CacheBytes   uint64                `json:"cache_bytes"`
	CacheObjects int                   `json:"cache_objects"`
	CacheEvicted uint64                `json:"cache_evictions"`
}

// EngineSims is one engine's row of StatsSnapshot.EngineSims.
type EngineSims struct {
	Sims       uint64  `json:"sims"`         // simulations executed by this engine
	Seconds    float64 `json:"seconds"`      // wall-clock time spent in them
	SimsPerSec float64 `json:"sims_per_sec"` // Sims / Seconds
}

// Stats snapshots the server's counters.
func (s *Server) Stats() StatsSnapshot {
	st := s.opts.Store.Stats()
	s.mu.Lock()
	byState := make(map[string]int)
	var runsDone int
	for _, j := range s.jobs {
		js := j.status()
		byState[string(js.State)]++
		runsDone += js.RunsDone
	}
	depth := len(s.queue)
	s.mu.Unlock()
	up := time.Since(s.start).Seconds()
	engine := s.opts.Engine
	if engine == "" {
		engine = "seq"
	}
	snap := StatsSnapshot{
		UptimeSeconds: up,
		QueueDepth:    depth,
		Jobs:          byState,
		RunsCompleted: uint64(runsDone),
		SimsRun:       st.Misses,
		Engine:        engine,
		Shards:        s.opts.Shards,
		CacheHits:     st.Hits + st.Coalesced,
		CacheMisses:   st.Misses,
		CacheHitRate:  st.HitRate(),
		CacheBytes:    st.Bytes,
		CacheObjects:  st.Objects,
		CacheEvicted:  st.Evictions,
	}
	if up > 0 {
		snap.SimsPerSec = float64(st.Misses) / up
	}
	s.simMu.Lock()
	if len(s.sims) > 0 {
		snap.EngineSims = make(map[string]EngineSims, len(s.sims))
		for name, es := range s.sims {
			row := EngineSims{Sims: es.n, Seconds: es.seconds}
			if es.seconds > 0 {
				row.SimsPerSec = float64(es.n) / es.seconds
			}
			snap.EngineSims[name] = row
		}
	}
	s.simMu.Unlock()
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// --- helpers --------------------------------------------------------------

// parseSystem resolves a system name ("FullCoh", "PT", "PT-RO", "RaCCD").
func parseSystem(name string) (coherence.Mode, error) {
	return coherence.ParseMode(name)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]any{"error": err.Error()})
}
